#include "bn/bif_io.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace fdx {

std::string SerializeBayesNet(const BayesNet& net) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    const BayesNode& node = net.node(i);
    out += "node " + node.name;
    for (const auto& state : node.states) out += " " + state;
    out += '\n';
  }
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    const BayesNode& node = net.node(i);
    out += "parents " + node.name;
    for (size_t p : node.parents) out += " " + net.node(p).name;
    out += '\n';
  }
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    const BayesNode& node = net.node(i);
    out += "cpt " + node.name;
    for (const auto& row : node.cpt) {
      for (double p : row) {
        std::snprintf(buf, sizeof(buf), " %.17g", p);
        out += buf;
      }
      out += " ;";
    }
    out += '\n';
  }
  return out;
}

Status WriteBayesNet(const BayesNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeBayesNet(net);
  return Status::OK();
}

Result<BayesNet> ParseBayesNet(const std::string& text) {
  struct PendingNode {
    std::vector<std::string> states;
    std::vector<std::string> parents;
    std::vector<std::vector<double>> cpt;
  };
  std::vector<std::string> order;  // declaration order
  std::map<std::string, PendingNode> pending;

  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed(StripAsciiWhitespace(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream tokens(trimmed);
    std::string keyword, name;
    tokens >> keyword >> name;
    if (name.empty()) {
      return Status::IOError("line " + std::to_string(line_number) +
                             ": missing node name");
    }
    if (keyword == "node") {
      if (pending.count(name) > 0) {
        return Status::IOError("duplicate node " + name);
      }
      PendingNode node;
      std::string state;
      while (tokens >> state) node.states.push_back(state);
      if (node.states.size() < 2) {
        return Status::IOError("node " + name + " needs >= 2 states");
      }
      order.push_back(name);
      pending.emplace(name, std::move(node));
    } else if (keyword == "parents") {
      auto it = pending.find(name);
      if (it == pending.end()) {
        return Status::IOError("parents before node for " + name);
      }
      std::string parent;
      while (tokens >> parent) it->second.parents.push_back(parent);
    } else if (keyword == "cpt") {
      auto it = pending.find(name);
      if (it == pending.end()) {
        return Status::IOError("cpt before node for " + name);
      }
      std::vector<double> row;
      std::string token;
      while (tokens >> token) {
        if (token == ";") {
          it->second.cpt.push_back(row);
          row.clear();
        } else {
          row.push_back(std::atof(token.c_str()));
        }
      }
      if (!row.empty()) {
        return Status::IOError("cpt row of " + name +
                               " not terminated with ';'");
      }
    } else {
      return Status::IOError("line " + std::to_string(line_number) +
                             ": unknown keyword " + keyword);
    }
  }

  BayesNet net;
  for (const auto& name : order) {
    PendingNode& node = pending.at(name);
    auto added = net.AddNode(name, node.states, node.parents);
    FDX_RETURN_IF_ERROR(added.status());
    FDX_RETURN_IF_ERROR(net.SetCpt(*added, std::move(node.cpt)));
  }
  FDX_RETURN_IF_ERROR(net.Validate());
  return net;
}

Result<BayesNet> ReadBayesNet(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBayesNet(buffer.str());
}

}  // namespace fdx
