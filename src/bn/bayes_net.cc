#include "bn/bayes_net.h"

#include <cmath>

namespace fdx {

Result<size_t> BayesNet::AddNode(const std::string& name,
                                 std::vector<std::string> states,
                                 const std::vector<std::string>& parent_names) {
  if (states.size() < 2) {
    return Status::InvalidArgument("node " + name + " needs >= 2 states");
  }
  BayesNode node;
  node.name = name;
  node.states = std::move(states);
  for (const auto& parent : parent_names) {
    bool found = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].name == parent) {
        node.parents.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("parent " + parent + " of " + name +
                                     " not yet declared");
    }
  }
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

size_t BayesNet::NumEdges() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node.parents.size();
  return total;
}

size_t BayesNet::NumParentConfigs(size_t i) const {
  size_t configs = 1;
  for (size_t p : nodes_[i].parents) configs *= nodes_[p].states.size();
  return configs;
}

void BayesNet::FillFunctionalCpts(double epsilon, Rng* rng) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    BayesNode& node = nodes_[i];
    const size_t arity = node.states.size();
    const size_t configs = NumParentConfigs(i);
    node.cpt.assign(configs, std::vector<double>(arity, 0.0));
    if (node.parents.empty()) {
      // Random skewed marginal: exponential weights, normalized.
      double total = 0.0;
      for (size_t s = 0; s < arity; ++s) {
        node.cpt[0][s] = 0.1 + rng->NextDouble();
        total += node.cpt[0][s];
      }
      for (size_t s = 0; s < arity; ++s) node.cpt[0][s] /= total;
      continue;
    }
    // Random state permutation guarantees that different parent
    // configurations map to different child states as far as the child
    // arity allows; without it a child can degenerate to a constant,
    // which carries no dependency signal at all.
    std::vector<size_t> state_perm(arity);
    for (size_t s = 0; s < arity; ++s) state_perm[s] = s;
    rng->Shuffle(&state_perm);
    const size_t offset = rng->NextUint64(arity);
    for (size_t config = 0; config < configs; ++config) {
      const size_t target = state_perm[(config + offset) % arity];
      const double rest = arity > 1 ? epsilon / static_cast<double>(arity - 1)
                                    : 0.0;
      for (size_t s = 0; s < arity; ++s) {
        node.cpt[config][s] = (s == target) ? 1.0 - epsilon : rest;
      }
    }
  }
}

Status BayesNet::SetCpt(size_t i, std::vector<std::vector<double>> cpt) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (cpt.size() != NumParentConfigs(i)) {
    return Status::InvalidArgument("CPT row count mismatch for " +
                                   nodes_[i].name);
  }
  for (const auto& row : cpt) {
    if (row.size() != nodes_[i].states.size()) {
      return Status::InvalidArgument("CPT row width mismatch for " +
                                     nodes_[i].name);
    }
  }
  nodes_[i].cpt = std::move(cpt);
  return Status::OK();
}

Status BayesNet::Validate() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const BayesNode& node = nodes_[i];
    const size_t configs = NumParentConfigs(i);
    if (node.cpt.size() != configs) {
      return Status::InvalidArgument("node " + node.name +
                                     " has wrong CPT row count");
    }
    for (const auto& row : node.cpt) {
      if (row.size() != node.states.size()) {
        return Status::InvalidArgument("node " + node.name +
                                       " has wrong CPT row width");
      }
      double total = 0.0;
      for (double p : row) {
        if (p < 0.0) {
          return Status::InvalidArgument("node " + node.name +
                                         " has a negative probability");
        }
        total += p;
      }
      if (std::fabs(total - 1.0) > 1e-6) {
        return Status::InvalidArgument("node " + node.name +
                                       " has an unnormalized CPT row");
      }
    }
  }
  return Status::OK();
}

Result<Table> BayesNet::Sample(size_t n, Rng* rng) const {
  FDX_RETURN_IF_ERROR(Validate());
  Table table(MakeSchema());
  std::vector<size_t> assignment(nodes_.size(), 0);
  std::vector<Value> row(nodes_.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const BayesNode& node = nodes_[i];
      // Mixed-radix parent configuration, first parent most significant.
      size_t config = 0;
      for (size_t p : node.parents) {
        config = config * nodes_[p].states.size() + assignment[p];
      }
      assignment[i] = rng->NextDiscrete(node.cpt[config]);
      row[i] = Value(node.states[assignment[i]]);
    }
    table.AppendRow(row);
  }
  return table;
}

FdSet BayesNet::GroundTruthFds() const {
  FdSet fds;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].parents.empty()) {
      fds.emplace_back(nodes_[i].parents, i);
    }
  }
  return fds;
}

Schema BayesNet::MakeSchema() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) names.push_back(node.name);
  return Schema(std::move(names));
}

}  // namespace fdx
