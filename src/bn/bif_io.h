#ifndef FDX_BN_BIF_IO_H_
#define FDX_BN_BIF_IO_H_

#include <string>

#include "bn/bayes_net.h"
#include "util/status.h"

namespace fdx {

/// Serializes a network to a line-oriented text format in the spirit of
/// the BIF files the bnlearn repository distributes:
///
///   node <name> <state> <state> ...
///   parents <name> [<parent> ...]
///   cpt <name> <p11> <p12> ... ; <p21> ... ;
///
/// One `node` line per variable in topological (insertion) order, then
/// the parent lists, then the CPTs row by row ( ';' terminates a parent
/// configuration). Whitespace-separated; names must be token-safe.
std::string SerializeBayesNet(const BayesNet& net);

/// Writes the serialized network to a file.
Status WriteBayesNet(const BayesNet& net, const std::string& path);

/// Parses the text format back into a validated network.
Result<BayesNet> ParseBayesNet(const std::string& text);

/// Reads a network from a file.
Result<BayesNet> ReadBayesNet(const std::string& path);

}  // namespace fdx

#endif  // FDX_BN_BIF_IO_H_
