#ifndef FDX_BN_NETWORKS_H_
#define FDX_BN_NETWORKS_H_

#include <string>
#include <vector>

#include "bn/bayes_net.h"

namespace fdx {

/// Factory functions for the five benchmark networks of paper Table 1.
/// Structures follow the published bnlearn repository networks exactly;
/// CPTs are synthesized with FillFunctionalCpts (see DESIGN.md,
/// substitution #1). `epsilon` is the per-configuration noise level and
/// `seed` fixes the CPT draw.

/// ASIA (Lauritzen & Spiegelhalter): 8 nodes, 8 edges, 6 FDs.
BayesNet MakeAsiaNetwork(double epsilon = 0.02, uint64_t seed = 11);

/// CANCER: 5 nodes, 4 edges, 3 FDs.
BayesNet MakeCancerNetwork(double epsilon = 0.02, uint64_t seed = 13);

/// EARTHQUAKE (Pearl): 5 nodes, 4 edges, 3 FDs.
BayesNet MakeEarthquakeNetwork(double epsilon = 0.02, uint64_t seed = 17);

/// CHILD (Spiegelhalter): 20 nodes, 25 edges, 19 FDs.
BayesNet MakeChildNetwork(double epsilon = 0.02, uint64_t seed = 19);

/// ALARM (Beinlich et al.): 37 nodes, 46 edges, 25 FDs.
BayesNet MakeAlarmNetwork(double epsilon = 0.02, uint64_t seed = 23);

/// Descriptor used by the benchmark drivers.
struct BenchmarkNetwork {
  std::string name;
  BayesNet net;
};

/// All five networks in the paper's Table 1/4 order.
std::vector<BenchmarkNetwork> MakeAllBenchmarkNetworks(double epsilon = 0.02);

}  // namespace fdx

#endif  // FDX_BN_NETWORKS_H_
