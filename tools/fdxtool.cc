// fdxtool — command-line FD profiler built on the FDX library.
//
// Subcommands:
//   discover <csv>   discover FDs (text or JSON output)
//   profile  <csv>   discovery + dependency heatmap + repairability
//   validate <csv> --fd="A,B -> C"   validate one FD, list violations
//   repair   <csv> --fd="A,B -> C" --out=<csv>   majority-vote repair
//   compare  <csv>   run all discovery methods, report time and #FDs
//   rank     <csv>   score every unary AFD candidate under 4 measures
//   cfd      <csv>   discover constant conditional FDs
//   generate --out=<csv>   emit a synthetic dataset with planted FDs
//
// Common flags: --format=text|json, --lambda=, --tau=, --ordering=,
// --budget=, --tuples=, --attributes=, --noise=, --seed=, --max-pairs=,
// --time-budget= (wall-clock seconds; expired runs exit 4 with a
// Timeout status), --no-recovery (fail fast instead of retrying).
//
// Beyond-RAM discovery (discover only): --max-memory-mb=N streams the
// CSV through a spillable chunk store and runs the bounded-memory
// transform under an N-MB process-RSS ceiling; --chunk-rows= sets the
// ingest chunk size (default 65536), --store-dir= keeps the chunk store
// (default: a temp dir next to the CSV, removed afterwards),
// --store-compression=none|varint picks the chunk payload codec, and
// --stable omits timing fields so the two paths' outputs can be
// compared byte-for-byte. The FDX_STORE_IO environment variable
// (mmap|read) selects the chunk read path.
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 validation violations, 4 timeout.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/fdx.h"
#include "data/csv.h"
#include "datasets/real_world.h"
#include "eval/report.h"
#include "eval/afd_ranking.h"
#include "eval/profiler.h"
#include "eval/runner.h"
#include "baselines/denial.h"
#include "baselines/ucc.h"
#include "fd/cfd.h"
#include "fd/validation.h"
#include "store/chunked_table.h"
#include "store/store_discover.h"
#include "synth/generator.h"
#include "util/file_io.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace fdx::tool {
namespace {

/// --key=value / --flag argument reader (positional args excluded).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        flags_.push_back(arg);
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    const std::string prefix = "--" + name + "=";
    for (const auto& flag : flags_) {
      if (flag.rfind(prefix, 0) == 0) return flag.substr(prefix.size());
    }
    return fallback;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const std::string value = Get(name);
    return value.empty() ? fallback : std::atof(value.c_str());
  }

  bool Has(const std::string& name) const {
    for (const auto& flag : flags_) {
      if (flag == "--" + name) return true;
    }
    return false;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
};

/// Prints a failure status and maps it to the tool's exit code
/// (4 for timeouts so scripts can distinguish budget expiry).
int FailWith(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return status.code() == StatusCode::kTimeout ? 4 : 1;
}

FdxOptions OptionsFromArgs(const Args& args) {
  FdxOptions options;
  options.lambda = args.GetDouble("lambda", options.lambda);
  options.time_budget_seconds =
      args.GetDouble("time-budget", options.time_budget_seconds);
  if (args.Has("no-recovery")) options.recovery.enabled = false;
  options.sparsity_threshold =
      args.GetDouble("tau", options.sparsity_threshold);
  options.relative_threshold =
      args.GetDouble("relative", options.relative_threshold);
  options.transform.max_pairs_per_attribute = static_cast<size_t>(
      args.GetDouble("max-pairs", 0.0));
  const std::string ordering = args.Get("ordering");
  if (!ordering.empty()) {
    auto parsed = ParseOrderingMethod(ordering);
    if (!parsed.ok()) {
      std::fprintf(stderr, "warning: %s; using default ordering\n",
                   parsed.status().ToString().c_str());
    } else {
      options.ordering = *parsed;
    }
  }
  const std::string solver = args.Get("solver");
  if (!solver.empty() && !ParseGlassoSolver(solver, &options.glasso.solver)) {
    std::fprintf(stderr,
                 "warning: unknown --solver=%s (want auto|cd|newton); "
                 "using auto\n",
                 solver.c_str());
  }
  return options;
}

Result<Table> LoadTable(const Args& args, const std::string& path) {
  CsvOptions csv;
  const std::string delim = args.Get("delimiter");
  if (!delim.empty()) csv.delimiter = delim[0];
  return ReadCsv(path, csv);
}

/// `stable` drops every timing-derived field (transform/learning
/// seconds, diagnostics) so the in-memory and out-of-core paths emit
/// byte-identical JSON for the same table — CI compares them with cmp.
void EmitFdsJson(const Schema& schema, size_t rows, const FdxResult& result,
                 bool stable) {
  std::vector<std::string> attribute_names;
  for (size_t c = 0; c < schema.size(); ++c) {
    attribute_names.push_back(schema.name(c));
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("rows");
  json.Integer(static_cast<int64_t>(rows));
  json.Key("columns");
  json.Integer(static_cast<int64_t>(schema.size()));
  if (!stable) {
    json.Key("transform_seconds");
    json.Number(result.transform_seconds);
    json.Key("learning_seconds");
    json.Number(result.learning_seconds);
    json.Key("diagnostics");
    WriteRunDiagnosticsJson(&json, result.diagnostics, attribute_names);
  }
  json.Key("fds");
  json.BeginArray();
  for (const auto& fd : result.fds) {
    json.BeginObject();
    json.Key("lhs");
    json.BeginArray();
    for (size_t a : fd.lhs) json.String(schema.name(a));
    json.EndArray();
    json.Key("rhs");
    json.String(schema.name(fd.rhs));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("%s\n", json.TakeString().c_str());
}

/// Text twin of EmitFdsJson with the same `stable` contract.
void EmitFdsText(const Schema& schema, size_t rows, const FdxResult& result,
                 bool stable) {
  if (stable) {
    std::printf("%zu rows x %zu columns; %zu FDs discovered\n\n%s", rows,
                schema.size(), result.fds.size(),
                FdSetToString(result.fds, schema).c_str());
    return;
  }
  std::printf("%zu rows x %zu columns; %zu FDs discovered in %.3fs\n\n%s",
              rows, schema.size(), result.fds.size(),
              result.transform_seconds + result.learning_seconds,
              FdSetToString(result.fds, schema).c_str());
  std::vector<std::string> names;
  for (size_t c = 0; c < schema.size(); ++c) names.push_back(schema.name(c));
  const std::string diagnostics =
      RenderRunDiagnostics(result.diagnostics, names);
  if (!diagnostics.empty()) std::printf("\n%s", diagnostics.c_str());
}

/// The beyond-RAM discover path: stream the CSV into a spillable chunk
/// store, then run the bounded-memory transform + the usual structure
/// learning under a process-RSS ceiling. Bit-identical results to the
/// in-memory path (EmitFds* with --stable makes that checkable by cmp).
int StreamingDiscover(const Args& args, const std::string& path) {
  const double max_memory_mb = args.GetDouble("max-memory-mb", 0.0);
  const uint64_t rss_limit =
      static_cast<uint64_t>(max_memory_mb * 1024.0 * 1024.0);
  const size_t chunk_rows =
      static_cast<size_t>(args.GetDouble("chunk-rows", 65536.0));
  std::string store_dir = args.Get("store-dir");
  const bool temp_store = store_dir.empty();
  if (temp_store) {
    store_dir = path + ".fdxstore";
    (void)RemoveDirectoryRecursive(store_dir);  // stale leftovers
  }
  CsvOptions csv;
  const std::string delim = args.Get("delimiter");
  if (!delim.empty()) csv.delimiter = delim[0];

  const std::string codec = args.Get("store-compression");
  ChunkedTable store;
  bool created = false;
  Status read =
      ReadCsvChunked(path, csv, chunk_rows, [&](Table&& chunk) -> Status {
        if (!created) {
          FDX_ASSIGN_OR_RETURN(
              store, ChunkedTable::Create(chunk.schema(), store_dir, codec));
          created = true;
        }
        if (chunk.num_rows() == 0) return Status::OK();
        return store.AppendBatch(chunk);
      });
  if (!read.ok()) {
    if (temp_store) (void)RemoveDirectoryRecursive(store_dir);
    std::fprintf(stderr, "%s\n", read.ToString().c_str());
    return 1;
  }

  StoreDiscoverOptions options;
  options.fdx = OptionsFromArgs(args);
  options.rss_limit_bytes = rss_limit;
  // Decoded columns may use at most a quarter of the ceiling; the rest
  // is left for dictionaries, counts, and the process baseline.
  options.column_cache_bytes = rss_limit / 4;
  auto result = DiscoverFromStore(store, options);
  const Schema schema = store.schema();
  const size_t rows = store.num_rows();
  if (temp_store) (void)RemoveDirectoryRecursive(store_dir);
  if (!result.ok()) return FailWith(result.status());
  if (args.Get("format") == "json") {
    EmitFdsJson(schema, rows, *result, args.Has("stable"));
  } else {
    EmitFdsText(schema, rows, *result, args.Has("stable"));
  }
  return 0;
}

int Discover(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: fdxtool discover <csv> [flags]\n");
    return 2;
  }
  if (args.GetDouble("max-memory-mb", 0.0) > 0.0) {
    return StreamingDiscover(args, args.positional()[0]);
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  FdxDiscoverer discoverer(OptionsFromArgs(args));
  auto result = discoverer.Discover(*table);
  if (!result.ok()) return FailWith(result.status());
  if (args.Get("format") == "json") {
    EmitFdsJson(table->schema(), table->num_rows(), *result,
                args.Has("stable"));
  } else {
    EmitFdsText(table->schema(), table->num_rows(), *result,
                args.Has("stable"));
  }
  return 0;
}

int Profile(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: fdxtool profile <csv> [flags]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  FdxDiscoverer discoverer(OptionsFromArgs(args));
  auto result = discoverer.Discover(*table);
  if (!result.ok()) return FailWith(result.status());
  const Schema& schema = table->schema();
  std::printf("Dependency heatmap (rows determine columns):\n\n");
  static const char kScale[] = " .:-=+*#%@";
  for (size_t i = 0; i < schema.size(); ++i) {
    std::printf("  ");
    for (size_t j = 0; j < schema.size(); ++j) {
      const double v = std::min(
          1.0, std::max(0.0, result->autoregression(i, j)));
      std::printf(" %c ", kScale[static_cast<size_t>(v * 9.0)]);
    }
    std::printf(" %s\n", schema.name(i).c_str());
  }
  std::printf("\nDiscovered FDs (with g3 validation error):\n");
  const EncodedTable encoded = EncodedTable::Encode(*table);
  for (const auto& fd : result->fds) {
    std::printf("  %-50s %.4f\n", fd.ToString(schema).c_str(),
                FdG3Error(encoded, fd));
  }
  std::vector<std::string> names;
  for (size_t c = 0; c < schema.size(); ++c) names.push_back(schema.name(c));
  const std::string diagnostics =
      RenderRunDiagnostics(result->diagnostics, names);
  if (!diagnostics.empty()) std::printf("\n%s", diagnostics.c_str());
  return 0;
}

int Validate(const Args& args) {
  if (args.positional().empty() || args.Get("fd").empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool validate <csv> --fd=\"A,B -> C\"\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto fd = ParseFd(table->schema(), args.Get("fd"));
  if (!fd.ok()) {
    std::fprintf(stderr, "%s\n", fd.status().ToString().c_str());
    return 1;
  }
  const EncodedTable encoded = EncodedTable::Encode(*table);
  auto report = ValidateFd(encoded, *fd);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%s\n  g3 error: %.4f\n  LHS groups: %zu (%zu violating)\n",
      fd->ToString(table->schema()).c_str(), report->g3_error,
      report->groups, report->violating_groups);
  const size_t shown = std::min<size_t>(report->violations.size(), 10);
  for (size_t v = 0; v < shown; ++v) {
    const auto& violation = report->violations[v];
    std::printf("  violation: rows");
    for (size_t r : violation.deviating_rows) std::printf(" %zu", r);
    std::printf(" deviate from the majority of their group\n");
  }
  if (report->violations.size() > shown) {
    std::printf("  ... and %zu more violating groups\n",
                report->violations.size() - shown);
  }
  return report->violating_groups == 0 ? 0 : 3;
}

int Repair(const Args& args) {
  if (args.positional().empty() || args.Get("fd").empty() ||
      args.Get("out").empty()) {
    std::fprintf(
        stderr,
        "usage: fdxtool repair <csv> --fd=\"A,B -> C\" --out=<csv>\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto fd = ParseFd(table->schema(), args.Get("fd"));
  if (!fd.ok()) {
    std::fprintf(stderr, "%s\n", fd.status().ToString().c_str());
    return 1;
  }
  const EncodedTable encoded = EncodedTable::Encode(*table);
  ValidationOptions options;
  options.max_violations = 0;
  auto repairs = SuggestRepairs(encoded, *fd, options);
  if (!repairs.ok()) {
    std::fprintf(stderr, "%s\n", repairs.status().ToString().c_str());
    return 1;
  }
  const Table repaired = ApplyRepairs(*table, *repairs);
  Status written = WriteCsv(repaired, args.Get("out"));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("applied %zu repairs; wrote %s\n", repairs->size(),
              args.Get("out").c_str());
  return 0;
}

int Compare(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: fdxtool compare <csv> [--budget=S]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  RunnerConfig config;
  config.time_budget_seconds = args.GetDouble("budget", 30.0);
  config.expected_error = args.GetDouble("error", 0.01);
  config.fdx = OptionsFromArgs(args);
  std::printf("time budget: %s s per method\n\n",
              FormatDouble(config.time_budget_seconds, 1).c_str());
  ReportTable report({"method", "time (s)", "# FDs", "status"});
  for (MethodId method : AllMethods()) {
    RunOutcome outcome = RunMethod(method, *table, config);
    report.AddRow({MethodName(method), FormatDouble(outcome.seconds, 2),
                   outcome.ok ? std::to_string(outcome.fds.size()) : "-",
                   outcome.ok ? "ok"
                              : (outcome.timeout ? "timeout" : "failed")});
  }
  std::printf("%s", report.ToString().c_str());
  return 0;
}

int Report(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: fdxtool report <csv>\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  ProfilerOptions options;
  options.fdx = OptionsFromArgs(args);
  auto profile = ProfileTable(*table, options);
  if (!profile.ok()) return FailWith(profile.status());
  std::printf("%s", RenderProfile(*profile, table->schema()).c_str());
  return 0;
}

int Dc(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool dc <csv> [--max-predicates=K]"
                 " [--sample-pairs=N] [--top=N]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  DcOptions options;
  options.max_predicates =
      static_cast<size_t>(args.GetDouble("max-predicates", 3));
  options.sample_pairs =
      static_cast<size_t>(args.GetDouble("sample-pairs", 20000));
  auto dcs = DiscoverDenialConstraints(*table, options);
  if (!dcs.ok()) {
    std::fprintf(stderr, "%s\n", dcs.status().ToString().c_str());
    return 1;
  }
  const size_t top = static_cast<size_t>(args.GetDouble("top", 40));
  std::printf("%zu minimal denial constraints (showing up to %zu):\n",
              dcs->size(), top);
  for (size_t i = 0; i < dcs->size() && i < top; ++i) {
    std::printf("  %s\n", (*dcs)[i].ToString(table->schema()).c_str());
  }
  return 0;
}

int Keys(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool keys <csv> [--error=E] [--max-size=K]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  UccOptions options;
  options.max_error = args.GetDouble("error", 0.0);
  options.max_size = static_cast<size_t>(args.GetDouble("max-size", 3));
  auto uccs = DiscoverUccs(*table, options);
  if (!uccs.ok()) {
    std::fprintf(stderr, "%s\n", uccs.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu minimal unique column combinations:\n", uccs->size());
  for (const auto& ucc : *uccs) {
    std::printf("  {");
    for (size_t i = 0; i < ucc.attributes.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  table->schema().name(ucc.attributes[i]).c_str());
    }
    std::printf("}  error=%.4f\n", ucc.error);
  }
  return 0;
}

int Cfd(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool cfd <csv> [--support=S] [--confidence=C]"
                 " [--max-lhs=K] [--top=N]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  CfdOptions options;
  options.min_support = args.GetDouble("support", options.min_support);
  options.min_confidence =
      args.GetDouble("confidence", options.min_confidence);
  options.max_lhs_size =
      static_cast<size_t>(args.GetDouble("max-lhs", 2));
  auto cfds = DiscoverConstantCfds(*table, options);
  if (!cfds.ok()) {
    std::fprintf(stderr, "%s\n", cfds.status().ToString().c_str());
    return 1;
  }
  const size_t top = static_cast<size_t>(args.GetDouble("top", 40));
  std::printf("%zu constant CFDs (showing up to %zu):\n", cfds->size(),
              top);
  for (size_t i = 0; i < cfds->size() && i < top; ++i) {
    const ConditionalFd& cfd = (*cfds)[i];
    std::printf("  %-60s support=%.3f confidence=%.3f\n",
                cfd.ToString(table->schema()).c_str(), cfd.support,
                cfd.confidence);
  }
  return 0;
}

int Rank(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool rank <csv> [--min-score=S] [--top=N]\n");
    return 2;
  }
  auto table = LoadTable(args, args.positional()[0]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  AfdRankingOptions options;
  options.min_reliable_fraction = args.GetDouble("min-score", 0.05);
  auto ranked = RankUnaryAfds(*table, options);
  if (!ranked.ok()) {
    std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
    return 1;
  }
  const size_t top = static_cast<size_t>(args.GetDouble("top", 20));
  ReportTable report(
      {"candidate FD", "reliable", "frac-info", "g3", "strength"});
  for (size_t i = 0; i < ranked->size() && i < top; ++i) {
    const AfdCandidate& c = (*ranked)[i];
    report.AddRow({c.fd.ToString(table->schema()),
                   FormatDouble(c.reliable_fraction, 3),
                   FormatDouble(c.fraction_of_information, 3),
                   FormatDouble(c.g3_error, 3),
                   FormatDouble(c.strength, 3)});
  }
  std::printf("%s", report.ToString().c_str());
  return 0;
}

int Generate(const Args& args) {
  if (args.Get("out").empty()) {
    std::fprintf(stderr,
                 "usage: fdxtool generate --out=<csv> [--tuples=N]"
                 " [--attributes=K] [--noise=R] [--seed=S]\n");
    return 2;
  }
  SyntheticConfig config;
  config.num_tuples =
      static_cast<size_t>(args.GetDouble("tuples", 1000));
  config.num_attributes =
      static_cast<size_t>(args.GetDouble("attributes", 10));
  config.noise_rate = args.GetDouble("noise", 0.01);
  config.seed = static_cast<uint64_t>(args.GetDouble("seed", 42));
  auto ds = GenerateSynthetic(config);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  Status written = WriteCsv(ds->noisy, args.Get("out"));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows, %zu attributes)\nplanted FDs:\n%s",
              args.Get("out").c_str(), ds->noisy.num_rows(),
              ds->noisy.num_columns(),
              FdSetToString(ds->true_fds, ds->noisy.schema()).c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "fdxtool — statistical FD discovery (FDX, SIGMOD 2020)\n\n"
      "subcommands:\n"
      "  discover <csv>                    discover FDs\n"
      "  profile <csv>                     heatmap + validated FDs\n"
      "  validate <csv> --fd=\"A -> B\"      validate one FD\n"
      "  repair <csv> --fd=.. --out=<csv>  majority-vote repair\n"
      "  compare <csv>                     run all methods\n"
      "  rank <csv>                        score unary AFD candidates\n"
      "  cfd <csv>                         constant conditional FDs\n"
      "  generate --out=<csv>              synthetic data generator\n\n"
      "robustness flags:\n"
      "  --time-budget=S   wall-clock budget in seconds; expired runs\n"
      "                    exit 4 with a Timeout status\n"
      "  --no-recovery     fail fast on numerical errors instead of\n"
      "                    retrying with ridge escalation / fallback\n"
      "  --solver=NAME     glasso backend: auto (default; Newton on\n"
      "                    large dense components, CD elsewhere), cd,\n"
      "                    or newton\n\n"
      "beyond-RAM flags (discover):\n"
      "  --max-memory-mb=N stream the CSV through a spillable chunk\n"
      "                    store and discover under an N-MB RSS ceiling\n"
      "  --chunk-rows=N    ingest chunk size (default 65536)\n"
      "  --store-dir=DIR   keep the chunk store at DIR (default: temp)\n"
      "  --store-compression=none|varint\n"
      "                    chunk payload codec (varint delta-compresses\n"
      "                    dictionary codes; results are identical)\n"
      "  --stable          omit timing fields so in-memory and chunked\n"
      "                    outputs compare byte-for-byte\n"
      "  FDX_STORE_IO=mmap|read (env) chunk read path; mmap (default)\n"
      "                    maps chunk files, read uses plain pread\n");
  return 2;
}

}  // namespace
}  // namespace fdx::tool

int main(int argc, char** argv) {
  using namespace fdx::tool;
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  const std::string command = argv[1];
  if (command == "discover") return Discover(args);
  if (command == "profile") return Profile(args);
  if (command == "validate") return Validate(args);
  if (command == "repair") return Repair(args);
  if (command == "compare") return Compare(args);
  if (command == "report") return Report(args);
  if (command == "dc") return Dc(args);
  if (command == "keys") return Keys(args);
  if (command == "cfd") return Cfd(args);
  if (command == "rank") return Rank(args);
  if (command == "generate") return Generate(args);
  return Usage();
}
