// fdxload — load generator and latency harness for the fdxd daemon.
//
// Drives thousands of concurrent connections from a single epoll-based
// client thread: every connection is non-blocking, requests may be
// pipelined (--pipeline in-flight per connection), and responses are
// matched to requests in order (the daemon guarantees request-order
// responses per connection). Each client opens one dataset session and
// then issues a deterministic mixed stream of `discover` (a shared
// one-shot table, so the daemon's result cache converges to hits),
// `append` (to the client's own session), and `status` requests.
//
// Latency is measured per request type from enqueue to response line
// (client-perceived, queueing included) and reported as p50/p95/p99
// alongside aggregate throughput, appended as one labelled run into a
// JSON benchmark file:
//
//   { "benchmark": "fdxd_load",
//     "runs": [ { "label": "epoll", "clients": 1000, ...,
//                 "request_types": { "discover": {"count":..,
//                   "p50_ms":.., "p95_ms":.., "p99_ms":..}, ... } } ] }
//
// Re-running with the same --label replaces that run, so a script can
// build one file comparing `--label=epoll` vs `--label=threads`.
//
// Flags:
//   --port=N | --port-file=PATH  target an already-running daemon
//   --self-host                  start an in-process FdxServer instead
//   --io=epoll|threads           self-host I/O mode      (default epoll)
//   --io-threads=N --workers=N --queue-capacity=N --cache-capacity=N
//                                self-host server tuning
//   --clients=N                  concurrent connections  (default 64)
//   --requests=N                 mix requests per client (default 50)
//   --pipeline=N                 in-flight per connection (default 4)
//   --discover-pct=P --append-pct=P   traffic mix        (default 60/20;
//                                remainder is `status`)
//   --label=STR                  run label in the output (default io mode)
//   --out=PATH                   benchmark file (default BENCH_service.json)
//
// Chaos mode (--chaos) turns the harness into a crash-consistency
// checker: every --chaos-kill-every'th client abruptly closes its
// socket halfway through its mix — mid-pipeline, with requests still in
// flight — then reconnects, resumes its *existing* session, and resends
// the requests whose responses were lost. The run verifies response
// integrity under this abuse: every successful discover response across
// the whole fleet must be byte-identical to the first one seen (they
// all query the same shared table), every line must parse, and
// responses must reconcile one-to-one with requests. Kill/reconnect/
// resend counters land in a "chaos" object in the run JSON.
//
// If the daemon disappears mid-run the harness does not crash or hang:
// a stall watchdog aborts the run, the partial results are written with
// "aborted": true, and the exit code is 1.
//
// Exit codes: 0 success, 1 runtime failure (connect/protocol errors,
// chaos verification failure, aborted run), 2 usage.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/json_parser.h"
#include "service/server.h"
#include "util/epoll.h"
#include "util/json_writer.h"
#include "util/socket.h"

namespace fdx::load {
namespace {

using Clock = std::chrono::steady_clock;

enum RequestType : size_t {
  kOpen = 0,
  kDiscover,
  kAppend,
  kStatus,
  kTypeCount,
};

const char* TypeName(size_t type) {
  switch (type) {
    case kOpen:
      return "open";
    case kDiscover:
      return "discover";
    case kAppend:
      return "append";
    case kStatus:
      return "status";
    default:
      return "unknown";
  }
}

struct Config {
  uint16_t port = 0;
  std::string port_file;
  bool self_host = false;
  IoMode io_mode = IoMode::kEventLoop;
  size_t io_threads = 1;
  size_t workers = 2;
  size_t queue_capacity = 64;
  size_t cache_capacity = 256;
  size_t clients = 64;
  size_t requests_per_client = 50;
  size_t pipeline = 4;
  size_t discover_pct = 60;
  size_t append_pct = 20;
  bool chaos = false;
  size_t chaos_kill_every = 3;  ///< every N-th client gets killed once
  std::string label;
  std::string out = "BENCH_service.json";
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: fdxload (--port=N | --port-file=PATH | --self-host)\n"
      "               [--io=epoll|threads] [--io-threads=N] [--workers=N]\n"
      "               [--queue-capacity=N] [--cache-capacity=N]\n"
      "               [--clients=N] [--requests=N] [--pipeline=N]\n"
      "               [--discover-pct=P] [--append-pct=P]\n"
      "               [--chaos] [--chaos-kill-every=N]\n"
      "               [--label=STR] [--out=PATH]\n");
  return 2;
}

void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= limit.rlim_max) return;
  limit.rlim_cur = limit.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

/// One connection of the load fleet.
struct Client {
  enum class Phase { kConnecting, kOpening, kRunning, kDone, kFailed };

  uint64_t id = 0;
  Socket sock;
  Phase phase = Phase::kConnecting;
  std::string session_id;
  std::string read_buf;
  std::string write_buf;
  size_t write_off = 0;
  bool want_write_armed = false;
  /// (request type, enqueue time); responses arrive in request order.
  std::deque<std::pair<size_t, Clock::time_point>> in_flight;
  size_t sent = 0;      ///< mix requests sent
  size_t received = 0;  ///< mix responses received
  bool setup_done = false;   ///< open response processed (phase-2 member)
  bool killed = false;       ///< this client already took its chaos kill
  bool kill_pending = false; ///< kill deferred to the end of OnReadable
};

struct TypeStats {
  std::vector<double> latencies_ms;
  uint64_t errors = 0;
};

/// The epoll client engine: owns the fleet, the per-type latency
/// samples, and the two-phase run (connect+open, then the timed mix).
class LoadEngine {
 public:
  explicit LoadEngine(const Config& config) : config_(config) {}

  bool Run(uint16_t port) {
    Result<Epoll> epoll = Epoll::Create();
    if (!epoll.ok()) {
      std::fprintf(stderr, "fdxload: %s\n", epoll.status().ToString().c_str());
      return false;
    }
    epoll_ = std::move(epoll).value();
    port_ = port;
    pending_setup_ = config_.clients;
    pending_runs_ = config_.clients;

    // Phase 1: connect the whole fleet and open one session per client.
    // Untimed — session setup is not part of the measured workload.
    for (size_t i = 0; i < config_.clients; ++i) {
      auto client = std::make_unique<Client>();
      client->id = i + 1;
      Result<Socket> sock = Socket::ConnectLoopbackAsync(port);
      if (!sock.ok()) {
        std::fprintf(stderr, "fdxload: connect: %s\n",
                     sock.status().ToString().c_str());
        return false;
      }
      client->sock = std::move(sock).value();
      if (!epoll_.Add(client->sock.fd(), client->id, /*want_write=*/true)
               .ok()) {
        std::fprintf(stderr, "fdxload: epoll add failed\n");
        return false;
      }
      client->want_write_armed = true;
      clients_[client->id] = std::move(client);
    }
    if (!Loop([this] { return pending_setup_ == 0; })) return false;

    // Phase 2: the timed mix.
    const Clock::time_point t0 = Clock::now();
    for (auto& [id, client] : clients_) {
      if (client->phase != Client::Phase::kRunning) continue;
      FillPipeline(client.get());
      Flush(client.get());
      UpdateInterest(client.get());
    }
    const bool completed = Loop([this] { return pending_runs_ == 0; });
    // Even an aborted run reports how long it actually ran.
    elapsed_seconds_ = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!completed) return false;
    if (fingerprint_mismatches_ > 0 || torn_lines_ > 0) {
      std::fprintf(stderr,
                   "fdxload: chaos verification FAILED: %llu fingerprint "
                   "mismatches, %llu torn lines\n",
                   static_cast<unsigned long long>(fingerprint_mismatches_),
                   static_cast<unsigned long long>(torn_lines_));
      return false;
    }
    return failures_ == 0;
  }

  double elapsed_seconds() const { return elapsed_seconds_; }
  uint64_t total_responses() const { return total_responses_; }
  const TypeStats& stats(size_t type) const { return stats_[type]; }
  uint64_t chaos_kills() const { return chaos_kills_; }
  uint64_t chaos_reconnects() const { return chaos_reconnects_; }
  uint64_t chaos_resent() const { return chaos_resent_; }
  uint64_t fingerprint_mismatches() const { return fingerprint_mismatches_; }
  uint64_t torn_lines() const { return torn_lines_; }

 private:
  /// Pumps the epoll loop until `finished` holds (or the fleet dies).
  /// A stall watchdog guarantees forward progress or a clean abort: if
  /// no response arrives and no client fails for ~30s (a vanished or
  /// wedged daemon), the run aborts instead of hanging forever.
  bool Loop(const std::function<bool()>& finished) {
    std::vector<Epoll::Event> events;
    uint64_t last_mark = ProgressMark();
    Clock::time_point last_progress = Clock::now();
    while (!finished()) {
      if (live_clients() == 0) {
        std::fprintf(stderr, "fdxload: all connections failed\n");
        return false;
      }
      if (!epoll_.Wait(5000, &events).ok()) {
        std::fprintf(stderr, "fdxload: epoll wait failed\n");
        return false;
      }
      // Wall-clock watchdog, deliberately not a wait counter: under
      // fragmented I/O (e.g. injected one-byte reads) a single response
      // takes hundreds of instant event rounds, and counting those as
      // stalls would abort a run that is progressing fine.
      const uint64_t mark = ProgressMark();
      if (mark != last_mark) {
        last_mark = mark;
        last_progress = Clock::now();
      } else if (std::chrono::duration<double>(Clock::now() - last_progress)
                     .count() > 30.0) {
        std::fprintf(stderr,
                     "fdxload: no progress for 30s with %zu clients live; "
                     "aborting (daemon gone?)\n",
                     live_clients());
        return false;
      }
      for (const Epoll::Event& event : events) {
        auto it = clients_.find(event.tag);
        if (it == clients_.end()) continue;
        Client* client = it->second.get();
        if (client->phase == Client::Phase::kConnecting &&
            (event.writable || event.hangup)) {
          OnConnected(client);
        }
        if (event.readable || event.hangup) OnReadable(client);
        if (event.writable) Flush(client);
        UpdateInterest(client);
      }
    }
    return true;
  }

  size_t live_clients() const {
    return clients_.size() - failed_ - done_;
  }

  /// Monotone activity counter for the stall watchdog.
  uint64_t ProgressMark() const {
    return responses_seen_ + failed_ + done_;
  }

  void OnConnected(Client* client) {
    Status connected = client->sock.FinishConnect();
    if (!connected.ok()) {
      Fail(client, "connect", connected.ToString());
      return;
    }
    if (!client->session_id.empty()) {
      // Chaos reconnect: the session outlives the connection server-side,
      // so the client resumes it directly and resends the lost requests.
      client->phase = Client::Phase::kRunning;
      FillPipeline(client);
      Flush(client);
      return;
    }
    client->phase = Client::Phase::kOpening;
    // Session open: measured like any request but reported separately.
    Enqueue(client, kOpen,
            "{\"op\":\"open\",\"schema\":[\"a\",\"b\",\"c\"]}");
    Flush(client);
  }

  void Enqueue(Client* client, size_t type, const std::string& request) {
    client->write_buf += request;
    client->write_buf += '\n';
    client->in_flight.emplace_back(type, Clock::now());
  }

  /// Deterministic per-client, per-index traffic mix.
  size_t MixType(const Client& client, size_t index) const {
    const uint64_t h =
        (client.id * 40503u + index * 2654435761u) % 100u;
    if (h < config_.discover_pct) return kDiscover;
    if (h < config_.discover_pct + config_.append_pct) return kAppend;
    return kStatus;
  }

  std::string BuildRequest(Client* client, size_t type, size_t index) const {
    switch (type) {
      case kDiscover:
        // Identical table bytes across the fleet: after the first solve
        // the daemon answers from the result cache (the cached-discover
        // hot path this benchmark exists to measure).
        return "{\"op\":\"discover\",\"table\":{\"schema\":[\"x\",\"y\",\"z\"],"
               "\"rows\":[[1,2,3],[2,4,6],[3,6,9],[4,8,12]]}}";
      case kAppend:
        // Two rows: the engine's batch-local pairing needs >= 2.
        return "{\"op\":\"append\",\"session\":\"" + client->session_id +
               "\",\"rows\":[[" + std::to_string(index % 7) + "," +
               std::to_string(index % 5) + "," + std::to_string(index % 3) +
               "],[" + std::to_string((index + 1) % 7) + "," +
               std::to_string((index + 1) % 5) + "," +
               std::to_string((index + 1) % 3) + "]]}";
      default:
        return "{\"op\":\"status\"}";
    }
  }

  void FillPipeline(Client* client) {
    if (client->phase != Client::Phase::kRunning) return;
    while (client->in_flight.size() < config_.pipeline &&
           client->sent < config_.requests_per_client) {
      const size_t type = MixType(*client, client->sent);
      Enqueue(client, type, BuildRequest(client, type, client->sent));
      ++client->sent;
    }
  }

  void OnReadable(Client* client) {
    if (client->phase == Client::Phase::kDone ||
        client->phase == Client::Phase::kFailed) {
      return;
    }
    char chunk[16 * 1024];
    for (;;) {
      Result<IoOutcome> outcome = client->sock.RecvRaw(chunk, sizeof(chunk));
      if (!outcome.ok()) {
        Fail(client, "recv", outcome.status().ToString());
        return;
      }
      if (outcome->would_block) break;
      if (outcome->closed) {
        if (client->received < config_.requests_per_client) {
          Fail(client, "recv", "server closed the connection early");
        }
        return;
      }
      client->read_buf.append(chunk, outcome->bytes);
      if (outcome->bytes < sizeof(chunk)) break;
    }
    size_t start = 0;
    for (;;) {
      const size_t newline = client->read_buf.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = client->read_buf.substr(start, newline - start);
      start = newline + 1;
      OnResponse(client, line);
      if (client->phase == Client::Phase::kDone ||
          client->phase == Client::Phase::kFailed) {
        return;
      }
    }
    if (start > 0) client->read_buf.erase(0, start);
    FillPipeline(client);
    Flush(client);
    if (client->kill_pending) {
      // Deferred from OnResponse so the kill never races the buffered
      // lines of the connection it is about to destroy — and run AFTER
      // the refill so the connection dies with requests genuinely in
      // flight (the torn-pipeline case the resend path must absorb).
      client->kill_pending = false;
      KillAndReconnect(client);
    }
  }

  void OnResponse(Client* client, const std::string& line) {
    ++responses_seen_;
    if (client->in_flight.empty()) {
      Fail(client, "protocol", "response without a pending request");
      return;
    }
    const auto [type, sent_at] = client->in_flight.front();
    client->in_flight.pop_front();
    const double latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - sent_at)
            .count();
    stats_[type].latencies_ms.push_back(latency_ms);

    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) ++torn_lines_;
    const bool ok = parsed.ok() && parsed->BoolOr("ok", false);
    if (!ok) ++stats_[type].errors;

    if (type == kOpen) {
      if (!ok) {
        Fail(client, "open", line);
        return;
      }
      client->session_id = parsed->StringOr("session", "");
      client->phase = Client::Phase::kRunning;
      client->setup_done = true;
      --pending_setup_;
      return;  // the timed phase fills the pipeline
    }

    if (type == kDiscover && ok) {
      // Every client discovers the identical shared table, so every
      // successful response must be byte-identical to the first one —
      // a duplicated, interleaved, or torn result cannot pass this.
      if (discover_reference_.empty()) {
        discover_reference_ = line;
      } else if (line != discover_reference_) {
        ++fingerprint_mismatches_;
      }
    }

    ++client->received;
    ++total_responses_;
    if (client->received >= config_.requests_per_client) {
      client->phase = Client::Phase::kDone;
      epoll_.Remove(client->sock.fd());
      client->sock.ShutdownBoth();
      ++done_;
      --pending_runs_;
      return;
    }
    if (config_.chaos && !client->killed &&
        config_.chaos_kill_every > 0 &&
        client->id % config_.chaos_kill_every == 0 &&
        client->received ==
            std::max<size_t>(1, config_.requests_per_client / 2)) {
      client->killed = true;
      client->kill_pending = true;  // executed after the read-buffer drain
    }
  }

  /// Chaos: abruptly drop the connection mid-pipeline, then reconnect
  /// and resume the same session, resending what was lost. The requests
  /// are regenerated deterministically from the per-index mix, so the
  /// retry sends exactly the request whose response never arrived.
  void KillAndReconnect(Client* client) {
    ++chaos_kills_;
    chaos_resent_ += client->in_flight.size();
    epoll_.Remove(client->sock.fd());
    client->sock.ShutdownBoth();
    client->in_flight.clear();
    client->read_buf.clear();
    client->write_buf.clear();
    client->write_off = 0;
    client->sent = client->received;  // regenerate the lost tail
    Result<Socket> sock = Socket::ConnectLoopbackAsync(port_);
    if (!sock.ok()) {
      Fail(client, "reconnect", sock.status().ToString());
      return;
    }
    client->sock = std::move(sock).value();
    client->phase = Client::Phase::kConnecting;
    if (!epoll_.Add(client->sock.fd(), client->id, /*want_write=*/true).ok()) {
      Fail(client, "reconnect", "epoll add failed");
      return;
    }
    client->want_write_armed = true;
    ++chaos_reconnects_;
  }

  void Flush(Client* client) {
    if (client->phase == Client::Phase::kDone ||
        client->phase == Client::Phase::kFailed ||
        client->phase == Client::Phase::kConnecting) {
      return;
    }
    while (client->write_off < client->write_buf.size()) {
      Result<IoOutcome> outcome =
          client->sock.SendRaw(client->write_buf.data() + client->write_off,
                               client->write_buf.size() - client->write_off);
      if (!outcome.ok() || outcome->closed) {
        Fail(client, "send", outcome.ok() ? "connection closed"
                                          : outcome.status().ToString());
        return;
      }
      if (outcome->would_block) return;
      client->write_off += outcome->bytes;
    }
    client->write_buf.clear();
    client->write_off = 0;
  }

  void UpdateInterest(Client* client) {
    if (client->phase == Client::Phase::kDone ||
        client->phase == Client::Phase::kFailed ||
        client->phase == Client::Phase::kConnecting) {
      // A connecting socket stays write-armed until OnConnected; poking
      // epoll here would disarm the connect-completion signal.
      return;
    }
    const bool want_write = client->write_off < client->write_buf.size();
    if (want_write == client->want_write_armed) return;
    epoll_.Modify(client->sock.fd(), client->id, /*want_read=*/true,
                  want_write);
    client->want_write_armed = want_write;
  }

  void Fail(Client* client, const char* where, const std::string& detail) {
    if (client->phase == Client::Phase::kFailed) return;
    if (failures_ < 5) {
      std::fprintf(stderr, "fdxload: client %llu failed at %s: %s\n",
                   static_cast<unsigned long long>(client->id), where,
                   detail.c_str());
    }
    // A chaos reconnect puts a mid-run client back into kConnecting, so
    // the phase alone cannot tell setup from run — setup_done can.
    const bool was_setup = !client->setup_done;
    client->phase = Client::Phase::kFailed;
    epoll_.Remove(client->sock.fd());
    client->sock.ShutdownBoth();
    ++failures_;
    ++failed_;
    if (was_setup) {
      --pending_setup_;
    } else {
      --pending_runs_;
    }
  }

  const Config config_;
  Epoll epoll_;
  std::unordered_map<uint64_t, std::unique_ptr<Client>> clients_;
  uint16_t port_ = 0;
  size_t pending_setup_ = 0;
  size_t pending_runs_ = 0;
  size_t done_ = 0;
  size_t failed_ = 0;
  uint64_t failures_ = 0;
  uint64_t total_responses_ = 0;
  uint64_t responses_seen_ = 0;
  double elapsed_seconds_ = 0.0;
  uint64_t chaos_kills_ = 0;
  uint64_t chaos_reconnects_ = 0;
  uint64_t chaos_resent_ = 0;
  uint64_t fingerprint_mismatches_ = 0;
  uint64_t torn_lines_ = 0;
  std::string discover_reference_;
  TypeStats stats_[kTypeCount];
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(index, sorted_ms->size() - 1)];
}

/// Renders this run's JSON object. `aborted` marks a run that ended
/// early (daemon vanished, verification failed) — its numbers are the
/// partial truth, not a completed measurement.
std::string RenderRun(const Config& config, const std::string& label,
                      LoadEngine* engine, bool aborted) {
  JsonWriter json;
  json.BeginObject();
  json.Key("label");
  json.String(label);
  json.Key("aborted");
  json.Bool(aborted);
  json.Key("io_mode");
  json.String(config.self_host
                  ? (config.io_mode == IoMode::kEventLoop ? "epoll" : "threads")
                  : "external");
  json.Key("clients");
  json.Integer(static_cast<int64_t>(config.clients));
  json.Key("pipeline_depth");
  json.Integer(static_cast<int64_t>(config.pipeline));
  json.Key("requests_per_client");
  json.Integer(static_cast<int64_t>(config.requests_per_client));
  json.Key("requests");
  json.Integer(static_cast<int64_t>(engine->total_responses()));
  json.Key("elapsed_seconds");
  json.Number(engine->elapsed_seconds());
  const double throughput =
      engine->elapsed_seconds() > 0.0
          ? static_cast<double>(engine->total_responses()) /
                engine->elapsed_seconds()
          : 0.0;
  json.Key("throughput_rps");
  json.Number(throughput);
  json.Key("request_types");
  json.BeginObject();
  for (size_t type = 0; type < kTypeCount; ++type) {
    TypeStats stats = engine->stats(type);  // copy: sorted locally
    if (stats.latencies_ms.empty()) continue;
    std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
    json.Key(TypeName(type));
    json.BeginObject();
    json.Key("count");
    json.Integer(static_cast<int64_t>(stats.latencies_ms.size()));
    json.Key("errors");
    json.Integer(static_cast<int64_t>(stats.errors));
    json.Key("p50_ms");
    json.Number(Percentile(&stats.latencies_ms, 0.50));
    json.Key("p95_ms");
    json.Number(Percentile(&stats.latencies_ms, 0.95));
    json.Key("p99_ms");
    json.Number(Percentile(&stats.latencies_ms, 0.99));
    json.Key("max_ms");
    json.Number(stats.latencies_ms.back());
    json.EndObject();
  }
  json.EndObject();
  if (config.chaos) {
    json.Key("chaos");
    json.BeginObject();
    json.Key("kills");
    json.Integer(static_cast<int64_t>(engine->chaos_kills()));
    json.Key("reconnects");
    json.Integer(static_cast<int64_t>(engine->chaos_reconnects()));
    json.Key("resent_requests");
    json.Integer(static_cast<int64_t>(engine->chaos_resent()));
    json.Key("fingerprint_mismatches");
    json.Integer(static_cast<int64_t>(engine->fingerprint_mismatches()));
    json.Key("torn_lines");
    json.Integer(static_cast<int64_t>(engine->torn_lines()));
    json.EndObject();
  }
  json.EndObject();
  return json.TakeString();
}

/// Merges `run_json` into the benchmark file: same-label runs are
/// replaced, others preserved, so epoll and threads runs accumulate
/// into one comparison file.
bool WriteBenchFile(const std::string& path, const std::string& label,
                    const std::string& run_json) {
  std::vector<std::string> kept_runs;
  // JsonValue cannot re-serialize, so preserved runs are re-extracted
  // textually: each run object was written on one line by this tool.
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      while (std::getline(in, line)) {
        const size_t start = line.find("{\"label\":");
        if (start == std::string::npos) continue;
        std::string run = line.substr(start);
        if (!run.empty() && run.back() == ',') run.pop_back();
        Result<JsonValue> parsed = JsonValue::Parse(run);
        if (!parsed.ok()) continue;
        if (parsed->StringOr("label", "") == label) continue;
        kept_runs.push_back(run);
      }
    }
  }
  kept_runs.push_back(run_json);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fdxload: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\"benchmark\":\"fdxd_load\",\n  \"runs\":[\n";
  for (size_t i = 0; i < kept_runs.size(); ++i) {
    out << "    " << kept_runs[i];
    if (i + 1 < kept_runs.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--port=", 0) == 0) {
      config.port = static_cast<uint16_t>(std::atoi(value("--port=").c_str()));
    } else if (arg.rfind("--port-file=", 0) == 0) {
      config.port_file = value("--port-file=");
    } else if (arg == "--self-host") {
      config.self_host = true;
    } else if (arg.rfind("--io=", 0) == 0) {
      const std::string mode = value("--io=");
      if (mode == "epoll") {
        config.io_mode = IoMode::kEventLoop;
      } else if (mode == "threads") {
        config.io_mode = IoMode::kThreadPerConnection;
      } else {
        std::fprintf(stderr, "fdxload: --io must be epoll or threads\n");
        return Usage();
      }
    } else if (arg.rfind("--io-threads=", 0) == 0) {
      config.io_threads =
          static_cast<size_t>(std::atoi(value("--io-threads=").c_str()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      config.workers =
          static_cast<size_t>(std::atoi(value("--workers=").c_str()));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      config.queue_capacity =
          static_cast<size_t>(std::atoi(value("--queue-capacity=").c_str()));
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      config.cache_capacity =
          static_cast<size_t>(std::atoi(value("--cache-capacity=").c_str()));
    } else if (arg.rfind("--clients=", 0) == 0) {
      config.clients =
          static_cast<size_t>(std::atoi(value("--clients=").c_str()));
    } else if (arg.rfind("--requests=", 0) == 0) {
      config.requests_per_client =
          static_cast<size_t>(std::atoi(value("--requests=").c_str()));
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      config.pipeline =
          static_cast<size_t>(std::atoi(value("--pipeline=").c_str()));
    } else if (arg.rfind("--discover-pct=", 0) == 0) {
      config.discover_pct =
          static_cast<size_t>(std::atoi(value("--discover-pct=").c_str()));
    } else if (arg.rfind("--append-pct=", 0) == 0) {
      config.append_pct =
          static_cast<size_t>(std::atoi(value("--append-pct=").c_str()));
    } else if (arg == "--chaos") {
      config.chaos = true;
    } else if (arg.rfind("--chaos-kill-every=", 0) == 0) {
      config.chaos_kill_every = static_cast<size_t>(
          std::atoi(value("--chaos-kill-every=").c_str()));
    } else if (arg.rfind("--label=", 0) == 0) {
      config.label = value("--label=");
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value("--out=");
    } else {
      std::fprintf(stderr, "fdxload: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (config.clients == 0 || config.requests_per_client == 0 ||
      config.pipeline == 0 ||
      config.discover_pct + config.append_pct > 100) {
    return Usage();
  }

  RaiseFdLimit();

  uint16_t port = config.port;
  std::unique_ptr<FdxServer> server;
  if (config.self_host) {
    ServerOptions options;
    options.io_mode = config.io_mode;
    options.io_threads = config.io_threads;
    options.workers = config.workers;
    options.queue_capacity = config.queue_capacity;
    options.cache_capacity = config.cache_capacity;
    options.max_sessions = config.clients + 8;
    server = std::make_unique<FdxServer>(options);
    const Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "fdxload: self-host: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    port = server->port();
  } else if (port == 0 && !config.port_file.empty()) {
    std::ifstream in(config.port_file);
    int value = 0;
    if (in >> value && value > 0 && value < 65536) {
      port = static_cast<uint16_t>(value);
    }
  }
  if (port == 0) {
    std::fprintf(stderr,
                 "fdxload: need --port=N, --port-file=PATH, or --self-host\n");
    return Usage();
  }

  std::string label = config.label;
  if (label.empty()) {
    label = config.self_host
                ? (config.io_mode == IoMode::kEventLoop ? "epoll" : "threads")
                : "external";
  }

  LoadEngine engine(config);
  const bool ok = engine.Run(port);
  if (server) server->Shutdown();

  // Aborted runs still record their partial results (marked as such) —
  // a crashed daemon should leave evidence, not an empty file.
  const std::string run_json = RenderRun(config, label, &engine, !ok);
  if (!WriteBenchFile(config.out, label, run_json)) return 1;

  const double throughput =
      engine.elapsed_seconds() > 0.0
          ? static_cast<double>(engine.total_responses()) /
                engine.elapsed_seconds()
          : 0.0;
  std::printf("fdxload[%s]: %llu responses from %zu clients in %.2fs "
              "(%.0f req/s)%s -> %s\n",
              label.c_str(),
              static_cast<unsigned long long>(engine.total_responses()),
              config.clients, engine.elapsed_seconds(), throughput,
              ok ? "" : " [ABORTED]", config.out.c_str());
  if (config.chaos) {
    std::printf("fdxload[%s]: chaos: %llu kills, %llu reconnects, %llu "
                "resent, %llu fingerprint mismatches, %llu torn lines\n",
                label.c_str(),
                static_cast<unsigned long long>(engine.chaos_kills()),
                static_cast<unsigned long long>(engine.chaos_reconnects()),
                static_cast<unsigned long long>(engine.chaos_resent()),
                static_cast<unsigned long long>(
                    engine.fingerprint_mismatches()),
                static_cast<unsigned long long>(engine.torn_lines()));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace fdx::load

int main(int argc, char** argv) { return fdx::load::Main(argc, argv); }
