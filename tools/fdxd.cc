// fdxd — the FD-discovery daemon (loopback TCP, line-delimited JSON).
//
// Serves the ops documented in DESIGN.md §9: open / append / discover /
// status / shutdown (plus the test-only `sleep` behind --debug-ops).
// Shut it down with `fdxctl shutdown`; the daemon drains in-flight
// discovery jobs under --drain-seconds and exits.
//
// I/O architecture (DESIGN.md §12): the default `--io=epoll` mode runs
// a fixed set of event-loop threads multiplexing every connection with
// pipelined request framing; `--io=threads` keeps the legacy
// thread-per-connection path for baseline comparisons.
//
// Flags (all --key=value):
//   --port=N            listen port; 0 (default) picks an ephemeral port
//   --port-file=PATH    write the bound port to PATH (for scripts/CI)
//   --io=epoll|threads  I/O mode                            (default epoll)
//   --io-threads=N      event-loop threads (epoll mode)     (default 1)
//   --workers=N         discovery worker threads            (default 2)
//   --queue-capacity=N  admitted-unfinished job cap         (default 8)
//   --max-sessions=N    open dataset sessions cap           (default 32)
//   --session-ttl=SEC   idle-session eviction, <=0 disables (default 600)
//   --session-shards=N  session-registry mutex stripes      (default 8)
//   --drain-seconds=SEC shutdown drain budget               (default 10)
//   --cache-capacity=N  result-cache entries                (default 64)
//   --cache-shards=N    result-cache mutex stripes          (default 8)
//   --max-pipeline-depth=N  per-connection pipelined frames (default 1024)
//   --lambda=, --time-budget=   baseline FdxOptions for requests that
//                               don't override them
//   --debug-ops         enable the test-only `sleep` op
//
// Robustness flags (DESIGN.md §13):
//   --state-dir=PATH    durable mode: snapshot sessions + result cache
//                       under PATH; on startup the daemon replays the
//                       snapshots and serves bit-identical results
//   --snapshot-interval=SEC  cache spill period in durable mode (default 5)
//   --default-deadline=SEC   server-side deadline applied to requests
//                            that don't send "deadline_seconds" (0 = none)
//   --shed-watermark=F  shed new discover jobs once queue depth crosses
//                       F * queue capacity (0 disables shedding)
//   --shed-rss-mb=N     shed new discover jobs above N MiB RSS (0 = off)
//   --shed-retry-after=SEC   retry_after hint on shed responses (default 0.2)
//   --store-compression=none|varint  chunk payload codec for "chunked"
//                       sessions; fingerprints cover the uncompressed
//                       bytes, so results and cache keys are unchanged
//
// SIGTERM/SIGINT trigger the same graceful drain as a `shutdown`
// request.
//
// Exit codes: 0 clean client-requested shutdown (jobs drained), 1
// startup failure or unclean drain, 2 usage, 3 clean signal-initiated
// shutdown (so supervisors can tell a drained SIGTERM from an operator
// `fdxctl shutdown`).

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"

namespace fdx::daemon {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fdxd [--port=N] [--port-file=PATH]\n"
               "            [--io=epoll|threads] [--io-threads=N]\n"
               "            [--workers=N] [--queue-capacity=N]\n"
               "            [--max-sessions=N] [--session-ttl=SEC]\n"
               "            [--session-shards=N] [--drain-seconds=SEC]\n"
               "            [--cache-capacity=N] [--cache-shards=N]\n"
               "            [--max-pipeline-depth=N] [--lambda=L]\n"
               "            [--time-budget=SEC] [--debug-ops]\n"
               "            [--state-dir=PATH] [--snapshot-interval=SEC]\n"
               "            [--default-deadline=SEC] [--shed-watermark=F]\n"
               "            [--shed-rss-mb=N] [--shed-retry-after=SEC]\n"
               "            [--store-compression=none|varint]\n");
  return 2;
}

/// Raises the fd soft limit to the hard limit. One epoll thread happily
/// owns thousands of sockets; the usual 1024 soft default would cap the
/// daemon long before the event loop breaks a sweat. Best-effort — on
/// failure the accept path's transient-EMFILE handling degrades
/// gracefully instead of dying.
void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= limit.rlim_max) return;
  limit.rlim_cur = limit.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

int Main(int argc, char** argv) {
  ServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(value("--port=").c_str()));
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--io=", 0) == 0) {
      const std::string mode = value("--io=");
      if (mode == "epoll") {
        options.io_mode = IoMode::kEventLoop;
      } else if (mode == "threads") {
        options.io_mode = IoMode::kThreadPerConnection;
      } else {
        std::fprintf(stderr, "fdxd: --io must be epoll or threads\n");
        return Usage();
      }
    } else if (arg.rfind("--io-threads=", 0) == 0) {
      options.io_threads =
          static_cast<size_t>(std::atoi(value("--io-threads=").c_str()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers =
          static_cast<size_t>(std::atoi(value("--workers=").c_str()));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      options.queue_capacity =
          static_cast<size_t>(std::atoi(value("--queue-capacity=").c_str()));
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      options.max_sessions =
          static_cast<size_t>(std::atoi(value("--max-sessions=").c_str()));
    } else if (arg.rfind("--session-ttl=", 0) == 0) {
      options.session_ttl_seconds = std::atof(value("--session-ttl=").c_str());
    } else if (arg.rfind("--session-shards=", 0) == 0) {
      options.session_shards =
          static_cast<size_t>(std::atoi(value("--session-shards=").c_str()));
    } else if (arg.rfind("--drain-seconds=", 0) == 0) {
      options.drain_seconds = std::atof(value("--drain-seconds=").c_str());
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      options.cache_capacity =
          static_cast<size_t>(std::atoi(value("--cache-capacity=").c_str()));
    } else if (arg.rfind("--cache-shards=", 0) == 0) {
      options.cache_shards =
          static_cast<size_t>(std::atoi(value("--cache-shards=").c_str()));
    } else if (arg.rfind("--max-pipeline-depth=", 0) == 0) {
      options.max_pipeline_depth = static_cast<size_t>(
          std::atoi(value("--max-pipeline-depth=").c_str()));
    } else if (arg.rfind("--lambda=", 0) == 0) {
      options.fdx.lambda = std::atof(value("--lambda=").c_str());
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      options.fdx.time_budget_seconds =
          std::atof(value("--time-budget=").c_str());
    } else if (arg == "--debug-ops") {
      options.enable_debug_ops = true;
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      options.state_dir = value("--state-dir=");
    } else if (arg.rfind("--snapshot-interval=", 0) == 0) {
      options.snapshot_interval_seconds =
          std::atof(value("--snapshot-interval=").c_str());
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds =
          std::atof(value("--default-deadline=").c_str());
    } else if (arg.rfind("--shed-watermark=", 0) == 0) {
      options.shed_queue_watermark =
          std::atof(value("--shed-watermark=").c_str());
    } else if (arg.rfind("--shed-rss-mb=", 0) == 0) {
      options.shed_max_rss_mb =
          static_cast<size_t>(std::atoi(value("--shed-rss-mb=").c_str()));
    } else if (arg.rfind("--shed-retry-after=", 0) == 0) {
      options.shed_retry_after_seconds =
          std::atof(value("--shed-retry-after=").c_str());
    } else if (arg.rfind("--store-compression=", 0) == 0) {
      options.store_compression = value("--store-compression=");
    } else {
      std::fprintf(stderr, "fdxd: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  RaiseFdLimit();

  // SIGTERM/SIGINT must drain, not kill. The signals are blocked in
  // every thread (spawned threads inherit this mask) and consumed by a
  // dedicated sigwait thread — signal-safe by construction, since the
  // handler work (server.Shutdown()) runs in ordinary thread context.
  sigset_t signal_mask;
  sigemptyset(&signal_mask);
  sigaddset(&signal_mask, SIGTERM);
  sigaddset(&signal_mask, SIGINT);
  sigaddset(&signal_mask, SIGUSR1);  // wake-up for clean sigwait exit
  pthread_sigmask(SIG_BLOCK, &signal_mask, nullptr);

  FdxServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fdxd: %s\n", started.ToString().c_str());
    return 1;
  }

  std::atomic<bool> signal_shutdown{false};
  std::atomic<bool> exiting{false};
  std::thread signal_thread([&] {
    for (;;) {
      int sig = 0;
      if (sigwait(&signal_mask, &sig) != 0) continue;
      if (exiting.load()) return;
      if (sig == SIGTERM || sig == SIGINT) {
        std::fprintf(stderr, "fdxd: caught %s, draining\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
        signal_shutdown.store(true);
        server.Shutdown();
        return;
      }
    }
  });
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "fdxd: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }
  std::printf("fdxd listening on 127.0.0.1:%u (%s)\n",
              static_cast<unsigned>(server.port()),
              server.io_mode() == IoMode::kEventLoop ? "epoll" : "threads");
  std::fflush(stdout);

  server.Wait();  // returns once a `shutdown` request or signal drained

  exiting.store(true);
  ::kill(::getpid(), SIGUSR1);  // wake sigwait if no signal ever arrived
  signal_thread.join();

  if (!server.drained_cleanly()) {
    std::fprintf(stderr, "fdxd: drain budget expired with jobs in flight\n");
    return 1;
  }
  return signal_shutdown.load() ? 3 : 0;
}

}  // namespace
}  // namespace fdx::daemon

int main(int argc, char** argv) { return fdx::daemon::Main(argc, argv); }
