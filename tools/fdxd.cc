// fdxd — the FD-discovery daemon (loopback TCP, line-delimited JSON).
//
// Serves the ops documented in DESIGN.md §9: open / append / discover /
// status / shutdown (plus the test-only `sleep` behind --debug-ops).
// Shut it down with `fdxctl shutdown`; the daemon drains in-flight
// discovery jobs under --drain-seconds and exits.
//
// I/O architecture (DESIGN.md §12): the default `--io=epoll` mode runs
// a fixed set of event-loop threads multiplexing every connection with
// pipelined request framing; `--io=threads` keeps the legacy
// thread-per-connection path for baseline comparisons.
//
// Flags (all --key=value):
//   --port=N            listen port; 0 (default) picks an ephemeral port
//   --port-file=PATH    write the bound port to PATH (for scripts/CI)
//   --io=epoll|threads  I/O mode                            (default epoll)
//   --io-threads=N      event-loop threads (epoll mode)     (default 1)
//   --workers=N         discovery worker threads            (default 2)
//   --queue-capacity=N  admitted-unfinished job cap         (default 8)
//   --max-sessions=N    open dataset sessions cap           (default 32)
//   --session-ttl=SEC   idle-session eviction, <=0 disables (default 600)
//   --session-shards=N  session-registry mutex stripes      (default 8)
//   --drain-seconds=SEC shutdown drain budget               (default 10)
//   --cache-capacity=N  result-cache entries                (default 64)
//   --cache-shards=N    result-cache mutex stripes          (default 8)
//   --max-pipeline-depth=N  per-connection pipelined frames (default 1024)
//   --lambda=, --time-budget=   baseline FdxOptions for requests that
//                               don't override them
//   --debug-ops         enable the test-only `sleep` op
//
// Exit codes: 0 clean shutdown (jobs drained), 1 startup failure or
// unclean drain, 2 usage.

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "service/server.h"

namespace fdx::daemon {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fdxd [--port=N] [--port-file=PATH]\n"
               "            [--io=epoll|threads] [--io-threads=N]\n"
               "            [--workers=N] [--queue-capacity=N]\n"
               "            [--max-sessions=N] [--session-ttl=SEC]\n"
               "            [--session-shards=N] [--drain-seconds=SEC]\n"
               "            [--cache-capacity=N] [--cache-shards=N]\n"
               "            [--max-pipeline-depth=N] [--lambda=L]\n"
               "            [--time-budget=SEC] [--debug-ops]\n");
  return 2;
}

/// Raises the fd soft limit to the hard limit. One epoll thread happily
/// owns thousands of sockets; the usual 1024 soft default would cap the
/// daemon long before the event loop breaks a sweat. Best-effort — on
/// failure the accept path's transient-EMFILE handling degrades
/// gracefully instead of dying.
void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= limit.rlim_max) return;
  limit.rlim_cur = limit.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

int Main(int argc, char** argv) {
  ServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(value("--port=").c_str()));
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--io=", 0) == 0) {
      const std::string mode = value("--io=");
      if (mode == "epoll") {
        options.io_mode = IoMode::kEventLoop;
      } else if (mode == "threads") {
        options.io_mode = IoMode::kThreadPerConnection;
      } else {
        std::fprintf(stderr, "fdxd: --io must be epoll or threads\n");
        return Usage();
      }
    } else if (arg.rfind("--io-threads=", 0) == 0) {
      options.io_threads =
          static_cast<size_t>(std::atoi(value("--io-threads=").c_str()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers =
          static_cast<size_t>(std::atoi(value("--workers=").c_str()));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      options.queue_capacity =
          static_cast<size_t>(std::atoi(value("--queue-capacity=").c_str()));
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      options.max_sessions =
          static_cast<size_t>(std::atoi(value("--max-sessions=").c_str()));
    } else if (arg.rfind("--session-ttl=", 0) == 0) {
      options.session_ttl_seconds = std::atof(value("--session-ttl=").c_str());
    } else if (arg.rfind("--session-shards=", 0) == 0) {
      options.session_shards =
          static_cast<size_t>(std::atoi(value("--session-shards=").c_str()));
    } else if (arg.rfind("--drain-seconds=", 0) == 0) {
      options.drain_seconds = std::atof(value("--drain-seconds=").c_str());
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      options.cache_capacity =
          static_cast<size_t>(std::atoi(value("--cache-capacity=").c_str()));
    } else if (arg.rfind("--cache-shards=", 0) == 0) {
      options.cache_shards =
          static_cast<size_t>(std::atoi(value("--cache-shards=").c_str()));
    } else if (arg.rfind("--max-pipeline-depth=", 0) == 0) {
      options.max_pipeline_depth = static_cast<size_t>(
          std::atoi(value("--max-pipeline-depth=").c_str()));
    } else if (arg.rfind("--lambda=", 0) == 0) {
      options.fdx.lambda = std::atof(value("--lambda=").c_str());
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      options.fdx.time_budget_seconds =
          std::atof(value("--time-budget=").c_str());
    } else if (arg == "--debug-ops") {
      options.enable_debug_ops = true;
    } else {
      std::fprintf(stderr, "fdxd: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  RaiseFdLimit();

  FdxServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fdxd: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "fdxd: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }
  std::printf("fdxd listening on 127.0.0.1:%u (%s)\n",
              static_cast<unsigned>(server.port()),
              server.io_mode() == IoMode::kEventLoop ? "epoll" : "threads");
  std::fflush(stdout);

  server.Wait();  // returns after a `shutdown` request finished draining
  if (!server.drained_cleanly()) {
    std::fprintf(stderr, "fdxd: drain budget expired with jobs in flight\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fdx::daemon

int main(int argc, char** argv) { return fdx::daemon::Main(argc, argv); }
