// fdxctl — command-line client of the fdxd daemon.
//
// Subcommands (every one needs --port=N or --port-file=PATH):
//   open     --schema=a,b,c [--options='{...}'] [--storage=chunked]
//   append   --session=s-1 (--csv-file=PATH | --rows='[[...]]')
//   discover (--session=s-1 | --csv-file=PATH | --csv-path=PATH
//             | --table='{...}') [--options='{...}']
//   status   [--text]             (--text: human-readable report)
//   shutdown
//   sleep    --seconds=S          (needs a --debug-ops daemon; test aid)
//   raw      --json='{"op":...}'  (send one verbatim request line)
//
// --csv-file reads a local CSV and ships its *contents* inline;
// --csv-path sends the path for the daemon to read server-side.
// --options / --rows / --table values are embedded verbatim as JSON.
// --timeout=SEC (any op) bounds both the connect and the wait for the
// response line; an expired deadline exits 6 without a response.
// --deadline=SEC (any op) asks the *server* to shed the request if it
// cannot start within SEC (adds "deadline_seconds" to the request).
//
// --retries=N re-attempts a failed request up to N extra times with
// exponential backoff plus jitter (--retry-base-ms=MS, default 100,
// doubling per attempt; a server-sent retry_after hint extends the
// wait). Retryable outcomes:
//   exit 3 (connect failure)   — always; the daemon may be restarting
//   exit 5 (busy/Unavailable)  — always; shedding asks for exactly this
//   exit 4/6 (timeouts)        — only for idempotent ops (discover,
//                                status, sleep); a timed-out open or
//                                append may have been applied, and
//                                replaying it would duplicate state
// Intermediate failures go to stderr; only the final response is
// printed.
//
// The raw response line is printed to stdout. Exit codes: 0 ok,
// 1 server-reported error, 2 usage, 3 connect failure, 4 server-
// reported timeout, 5 busy (Unavailable — back off and retry),
// 6 client-side deadline (--timeout) expired.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json_parser.h"
#include "service/protocol.h"
#include "util/json_writer.h"
#include "util/socket.h"

namespace fdx::ctl {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) flags_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    const std::string prefix = "--" + name + "=";
    for (const auto& flag : flags_) {
      if (flag.rfind(prefix, 0) == 0) return flag.substr(prefix.size());
    }
    return fallback;
  }

  bool Has(const std::string& name) const {
    for (const auto& flag : flags_) {
      if (flag == "--" + name) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> flags_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: fdxctl <op> --port=N|--port-file=PATH [op flags]\n"
      "  open     --schema=a,b,c [--options='{...}'] [--storage=chunked]\n"
      "  append   --session=ID (--csv-file=PATH | --rows='[[...]]')\n"
      "  discover (--session=ID | --csv-file=PATH | --csv-path=PATH |\n"
      "            --table='{...}') [--options='{...}']\n"
      "  status [--text] | shutdown | sleep --seconds=S | raw --json='{...}'\n"
      "  any op: --timeout=SEC (connect + response deadline; exit 6)\n"
      "          --deadline=SEC (server-side deadline for the request)\n"
      "          --retries=N --retry-base-ms=MS (backoff on 3/5, and on\n"
      "          4/6 for idempotent ops)\n");
  return 2;
}

std::string Quote(const std::string& text) {
  return "\"" + JsonWriter::Escape(text) + "\"";
}

/// Resolves the daemon port from --port or --port-file; 0 on failure.
uint16_t ResolvePort(const Args& args) {
  const std::string port = args.Get("port");
  if (!port.empty()) return static_cast<uint16_t>(std::atoi(port.c_str()));
  const std::string port_file = args.Get("port-file");
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    int value = 0;
    if (in >> value && value > 0 && value < 65536) {
      return static_cast<uint16_t>(value);
    }
  }
  return 0;
}

Result<std::string> SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed on " + path);
  return contents.str();
}

/// Builds the request line for `op`, or an error for bad flag combos.
Result<std::string> BuildRequest(const std::string& op, const Args& args) {
  if (op == "raw") {
    const std::string json = args.Get("json");
    if (json.empty()) return Status::InvalidArgument("raw needs --json=");
    return json;
  }

  std::string request = "{\"op\":" + Quote(op);
  const std::string options = args.Get("options");

  if (op == "open") {
    const std::string schema = args.Get("schema");
    if (schema.empty()) return Status::InvalidArgument("open needs --schema=");
    request += ",\"schema\":[";
    std::string name;
    std::istringstream names(schema);
    bool first = true;
    while (std::getline(names, name, ',')) {
      if (!first) request += ",";
      request += Quote(name);
      first = false;
    }
    request += "]";
    const std::string storage = args.Get("storage");
    if (!storage.empty()) request += ",\"storage\":" + Quote(storage);
  } else if (op == "append") {
    const std::string session = args.Get("session");
    if (session.empty()) {
      return Status::InvalidArgument("append needs --session=");
    }
    request += ",\"session\":" + Quote(session);
    const std::string csv_file = args.Get("csv-file");
    const std::string rows = args.Get("rows");
    if (csv_file.empty() == rows.empty()) {
      return Status::InvalidArgument(
          "append needs exactly one of --csv-file= or --rows=");
    }
    if (!csv_file.empty()) {
      Result<std::string> contents = SlurpFile(csv_file);
      if (!contents.ok()) return contents.status();
      request += ",\"csv\":" + Quote(contents.value());
    } else {
      request += ",\"rows\":" + rows;
    }
  } else if (op == "discover") {
    const std::string session = args.Get("session");
    const std::string csv_file = args.Get("csv-file");
    const std::string csv_path = args.Get("csv-path");
    const std::string table = args.Get("table");
    const int sources = !session.empty() + !csv_file.empty() +
                        !csv_path.empty() + !table.empty();
    if (sources != 1) {
      return Status::InvalidArgument(
          "discover needs exactly one of --session=, --csv-file=, "
          "--csv-path=, --table=");
    }
    if (!session.empty()) {
      request += ",\"session\":" + Quote(session);
    } else if (!csv_file.empty()) {
      Result<std::string> contents = SlurpFile(csv_file);
      if (!contents.ok()) return contents.status();
      request += ",\"csv\":" + Quote(contents.value());
    } else if (!csv_path.empty()) {
      request += ",\"csv_path\":" + Quote(csv_path);
    } else {
      request += ",\"table\":" + table;
    }
  } else if (op == "sleep") {
    request += ",\"seconds\":" + args.Get("seconds", "0.05");
  } else if (op != "status" && op != "shutdown") {
    return Status::InvalidArgument("unknown op \"" + op + "\"");
  }

  if (!options.empty()) request += ",\"options\":" + options;
  const std::string deadline = args.Get("deadline");
  if (!deadline.empty()) {
    const double seconds = std::atof(deadline.c_str());
    if (seconds <= 0.0) {
      return Status::InvalidArgument("--deadline must be a positive number");
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", seconds);
    request += ",\"deadline_seconds\":";
    request += buffer;
  }
  return request + "}";
}

/// Maps the response line to the exit code contract.
int ExitCodeFor(const std::string& response) {
  Result<JsonValue> parsed = JsonValue::Parse(response);
  if (!parsed.ok()) return 1;  // daemon spoke, but not JSON — treat as error
  if (parsed->BoolOr("ok", false)) return 0;
  const JsonValue* error = parsed->Find("error");
  const std::string code =
      error == nullptr ? "" : error->StringOr("code", "");
  if (code == "Unavailable") return 5;
  if (code == "Timeout") return 4;
  return 1;
}

/// One connect → send → read round trip. `response` is empty when the
/// failure happened before a response line arrived.
int RunAttempt(uint16_t port, double timeout, const std::string& request,
               std::string* response) {
  response->clear();
  Result<Socket> sock = Socket::ConnectLoopback(port, timeout);
  if (!sock.ok()) {
    std::fprintf(stderr, "fdxctl: %s\n", sock.status().ToString().c_str());
    return sock.status().code() == StatusCode::kTimeout ? 6 : 3;
  }
  if (timeout > 0.0) {
    // Read deadline: a wedged daemon makes ReadLine return kTimeout
    // instead of blocking forever.
    Status armed = sock->SetReadTimeout(timeout);
    if (!armed.ok()) {
      std::fprintf(stderr, "fdxctl: %s\n", armed.ToString().c_str());
      return 3;
    }
  }
  Status sent = sock->SendAll(request + "\n");
  if (!sent.ok()) {
    std::fprintf(stderr, "fdxctl: %s\n", sent.ToString().c_str());
    return 3;
  }
  Status read = sock->ReadLine(response);
  if (!read.ok()) {
    response->clear();
    std::fprintf(stderr, "fdxctl: %s\n", read.ToString().c_str());
    return read.code() == StatusCode::kTimeout ? 6 : 3;
  }
  return ExitCodeFor(*response);
}

/// Server-suggested wait before the next attempt, 0 when absent.
double RetryAfterSeconds(const std::string& response) {
  if (response.empty()) return 0.0;
  Result<JsonValue> parsed = JsonValue::Parse(response);
  if (!parsed.ok()) return 0.0;
  return parsed->NumberOr("retry_after", 0.0);
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string op = argv[1];
  const Args args(argc, argv);

  Result<std::string> request = BuildRequest(op, args);
  if (!request.ok()) {
    std::fprintf(stderr, "fdxctl: %s\n", request.status().ToString().c_str());
    return 2;
  }

  const uint16_t port = ResolvePort(args);
  if (port == 0) {
    std::fprintf(stderr, "fdxctl: need --port=N or --port-file=PATH\n");
    return 2;
  }
  const double timeout = std::atof(args.Get("timeout", "0").c_str());
  if (timeout < 0.0) {
    std::fprintf(stderr, "fdxctl: --timeout must be non-negative\n");
    return 2;
  }
  const int retries = std::atoi(args.Get("retries", "0").c_str());
  const double base_ms = std::atof(args.Get("retry-base-ms", "100").c_str());
  if (retries < 0 || base_ms <= 0.0) {
    std::fprintf(stderr,
                 "fdxctl: --retries must be >= 0, --retry-base-ms > 0\n");
    return 2;
  }
  // Replaying a timed-out open/append could duplicate server state; see
  // the retry policy in the header comment.
  const bool idempotent = op == "discover" || op == "status" || op == "sleep";
  std::mt19937 rng(std::random_device{}());

  std::string response;
  int code = 0;
  for (int attempt = 0;; ++attempt) {
    code = RunAttempt(port, timeout, request.value(), &response);
    const bool retryable =
        code == 3 || code == 5 || ((code == 4 || code == 6) && idempotent);
    if (code == 0 || attempt >= retries || !retryable) break;
    const double backoff_ms =
        base_ms * static_cast<double>(1 << std::min(attempt, 10)) +
        std::uniform_real_distribution<double>(0.0, base_ms)(rng);
    const double wait_ms =
        std::max(backoff_ms, RetryAfterSeconds(response) * 1000.0);
    std::fprintf(stderr,
                 "fdxctl: attempt %d/%d failed (exit %d), retrying in %.0f ms\n",
                 attempt + 1, retries + 1, code, wait_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wait_ms));
  }

  if (response.empty()) return code;  // never got a response line
  if (op == "status" && args.Has("text")) {
    Result<JsonValue> parsed = JsonValue::Parse(response);
    if (parsed.ok() && parsed->BoolOr("ok", false)) {
      std::fputs(RenderStatusTextReport(parsed.value()).c_str(), stdout);
      return 0;
    }
    // Fall through to the raw line for errors (and their exit codes).
  }
  std::printf("%s\n", response.c_str());
  return code;
}

}  // namespace
}  // namespace fdx::ctl

int main(int argc, char** argv) { return fdx::ctl::Main(argc, argv); }
