# ctest helper: run fdxtool discover on ${CSV} four ways — in-memory,
# through the out-of-core chunk store with a deliberately tiny chunk
# size and memory ceiling, the same with varint-compressed chunk
# payloads, and once more over the pread fallback path — and fail
# unless the --stable JSON outputs are byte-identical. Invoked as:
#   cmake -DFDXTOOL=<bin> -DCSV=<file> -P oocore_cmp.cmake

execute_process(
  COMMAND ${FDXTOOL} discover ${CSV} --format=json --stable
  OUTPUT_VARIABLE in_memory RESULT_VARIABLE in_memory_rc)
if(NOT in_memory_rc EQUAL 0)
  message(FATAL_ERROR "in-memory discover failed (exit ${in_memory_rc})")
endif()

execute_process(
  COMMAND ${FDXTOOL} discover ${CSV} --format=json --stable
          --max-memory-mb=512 --chunk-rows=97
  OUTPUT_VARIABLE chunked RESULT_VARIABLE chunked_rc)
if(NOT chunked_rc EQUAL 0)
  message(FATAL_ERROR "out-of-core discover failed (exit ${chunked_rc})")
endif()

if(NOT in_memory STREQUAL chunked)
  message(FATAL_ERROR
    "out-of-core output diverged from in-memory:\n"
    "--- in-memory ---\n${in_memory}\n--- chunked ---\n${chunked}")
endif()

execute_process(
  COMMAND ${FDXTOOL} discover ${CSV} --format=json --stable
          --max-memory-mb=512 --chunk-rows=97 --store-compression=varint
  OUTPUT_VARIABLE compressed RESULT_VARIABLE compressed_rc)
if(NOT compressed_rc EQUAL 0)
  message(FATAL_ERROR "compressed discover failed (exit ${compressed_rc})")
endif()
if(NOT in_memory STREQUAL compressed)
  message(FATAL_ERROR
    "compressed-store output diverged from in-memory:\n"
    "--- in-memory ---\n${in_memory}\n--- compressed ---\n${compressed}")
endif()

set(ENV{FDX_STORE_IO} read)
execute_process(
  COMMAND ${FDXTOOL} discover ${CSV} --format=json --stable
          --max-memory-mb=512 --chunk-rows=97
  OUTPUT_VARIABLE readpath RESULT_VARIABLE readpath_rc)
unset(ENV{FDX_STORE_IO})
if(NOT readpath_rc EQUAL 0)
  message(FATAL_ERROR "read-path discover failed (exit ${readpath_rc})")
endif()
if(NOT in_memory STREQUAL readpath)
  message(FATAL_ERROR
    "pread-path output diverged from in-memory:\n"
    "--- in-memory ---\n${in_memory}\n--- read ---\n${readpath}")
endif()
