// Bitwise equivalence of the out-of-core path against the in-memory
// engine: for every chunk size, thread count, cache budget, and input
// quirk (nulls, heavy ties, headerless CSV, sampled pairs), streaming
// moments and DiscoverFromStore must reproduce the in-memory results
// exactly — same doubles, same FDs, same matrices. Equality here is
// operator== on doubles, i.e. bit-identity of the computed values.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "core/fdx.h"
#include "core/transform.h"
#include "data/csv.h"
#include "data/table.h"
#include "store/chunked_table.h"
#include "store/store_discover.h"
#include "store/stream_transform.h"
#include "util/file_io.h"

namespace fdx {
namespace {

const size_t kChunkSizes[] = {1, 7, 1000, 65536};
const size_t kThreadCounts[] = {1, 2, 8};

/// zip is determined by city; state has ties and nulls; noise breaks a
/// few pairs so the run exercises real (non-trivial) structure.
Table FdTable(size_t rows) {
  Table table{Schema({"city", "state", "zip", "noise"})};
  for (size_t r = 0; r < rows; ++r) {
    const size_t city = r % 23;
    std::vector<Value> row(4);
    row[0] = Value(static_cast<int64_t>(city));
    row[1] = r % 19 == 0 ? Value::Null()
                         : Value("st" + std::to_string(city % 5));
    row[2] = Value(static_cast<int64_t>(city * 100 + (r % 97 == 0 ? 1 : 0)));
    row[3] = Value(static_cast<int64_t>((r * 2654435761u) % 13));
    table.AppendRow(std::move(row));
  }
  return table;
}

void AppendInChunks(const Table& table, size_t chunk_rows,
                    ChunkedTable* store) {
  for (size_t lo = 0; lo < table.num_rows(); lo += chunk_rows) {
    const size_t hi = std::min(table.num_rows(), lo + chunk_rows);
    Table batch{table.schema()};
    std::vector<Value> row(table.num_columns());
    for (size_t r = lo; r < hi; ++r) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row[c] = table.cell(r, c);
      }
      batch.AppendRow(row);
    }
    ASSERT_TRUE(store->AppendBatch(batch).ok());
  }
}

void ExpectMatrixIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

void ExpectMomentsIdentical(const TransformedMoments& memory,
                            const TransformedMoments& stream) {
  EXPECT_EQ(memory.num_samples, stream.num_samples);
  ASSERT_EQ(memory.mean.size(), stream.mean.size());
  for (size_t i = 0; i < memory.mean.size(); ++i) {
    EXPECT_EQ(memory.mean[i], stream.mean[i]) << "mean[" << i << "]";
  }
  ExpectMatrixIdentical(memory.cov, stream.cov);
}

TEST(StoreEquivalenceTest, MomentsIdenticalAcrossChunkAndThreadGrid) {
  const Table table = FdTable(600);
  for (size_t threads : kThreadCounts) {
    TransformOptions transform;
    transform.threads = threads;
    auto memory = PairTransformMoments(table, transform);
    ASSERT_TRUE(memory.ok());
    for (size_t chunk_rows : kChunkSizes) {
      auto store = ChunkedTable::Create(table.schema(), "");
      ASSERT_TRUE(store.ok());
      AppendInChunks(table, chunk_rows, &store.value());
      StreamTransformOptions stream;
      stream.transform = transform;
      auto streamed = StreamTransformMoments(store.value(), stream);
      ASSERT_TRUE(streamed.ok())
          << chunk_rows << "x" << threads << ": "
          << streamed.status().message();
      ExpectMomentsIdentical(memory.value(), streamed.value());
    }
  }
}

TEST(StoreEquivalenceTest, BoundedCacheDoesNotChangeResults) {
  const Table table = FdTable(400);
  auto memory = PairTransformMoments(table, {});
  ASSERT_TRUE(memory.ok());
  auto store = ChunkedTable::Create(table.schema(), "");
  ASSERT_TRUE(store.ok());
  AppendInChunks(table, 57, &store.value());
  // 2-column cache: forces the serial LRU path with constant reloads.
  StreamTransformOptions stream;
  stream.column_cache_bytes = 2 * 400 * sizeof(int32_t);
  auto streamed = StreamTransformMoments(store.value(), stream);
  ASSERT_TRUE(streamed.ok());
  ExpectMomentsIdentical(memory.value(), streamed.value());
}

TEST(StoreEquivalenceTest, IoModeAndCodecGridIdentical) {
  // The full storage matrix: raw vs varint payloads crossed with mmap
  // vs pread reads, at degenerate and huge chunk sizes, every cell
  // bit-identical to the in-memory transform.
  const Table table = FdTable(300);
  auto memory = PairTransformMoments(table, {});
  ASSERT_TRUE(memory.ok());
  const std::string base =
      ::testing::TempDir() + "fdx_store_equiv_iogrid";
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{65536}}) {
    for (const char* codec : {"", "varint"}) {
      const std::string dir = base + "_" + std::to_string(chunk_rows) +
                              (codec[0] == '\0' ? "_raw" : "_varint");
      (void)RemoveDirectoryRecursive(dir);
      {
        auto store = ChunkedTable::Create(table.schema(), dir, codec);
        ASSERT_TRUE(store.ok());
        AppendInChunks(table, chunk_rows, &store.value());
      }
      for (StoreIo io : {StoreIo::kMmap, StoreIo::kRead}) {
        auto store = ChunkedTable::Open(dir);
        ASSERT_TRUE(store.ok()) << store.status().message();
        store.value().set_io_mode(io);
        auto streamed = StreamTransformMoments(store.value(), {});
        ASSERT_TRUE(streamed.ok())
            << chunk_rows << "/" << codec << "/"
            << (io == StoreIo::kMmap ? "mmap" : "read") << ": "
            << streamed.status().message();
        ExpectMomentsIdentical(memory.value(), streamed.value());
      }
      ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
    }
  }
}

TEST(StoreEquivalenceTest, WaveAndSerialSchedulesIdenticalAcrossThreads) {
  // A cache budget small enough to force multiple waves; the parallel
  // wave scheduler must match both the in-memory transform and the
  // serial LRU path bit-for-bit at every thread count.
  const Table table = FdTable(400);
  for (size_t threads : kThreadCounts) {
    TransformOptions transform;
    transform.threads = threads;
    auto memory = PairTransformMoments(table, transform);
    ASSERT_TRUE(memory.ok());
    auto store = ChunkedTable::Create(table.schema(), "");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 57, &store.value());
    for (BoundedSchedule schedule :
         {BoundedSchedule::kWave, BoundedSchedule::kSerial}) {
      StreamTransformOptions stream;
      stream.transform = transform;
      stream.bounded_schedule = schedule;
      stream.column_cache_bytes = 3 * 400 * sizeof(int32_t);
      auto streamed = StreamTransformMoments(store.value(), stream);
      ASSERT_TRUE(streamed.ok())
          << threads << "x"
          << (schedule == BoundedSchedule::kWave ? "wave" : "serial") << ": "
          << streamed.status().message();
      ExpectMomentsIdentical(memory.value(), streamed.value());
    }
  }
}

TEST(StoreEquivalenceTest, SampledPairsIdenticalAcrossChunking) {
  const Table table = FdTable(500);
  TransformOptions transform;
  transform.max_pairs_per_attribute = 64;
  auto memory = PairTransformMoments(table, transform);
  ASSERT_TRUE(memory.ok());
  for (size_t chunk_rows : kChunkSizes) {
    auto store = ChunkedTable::Create(table.schema(), "");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, chunk_rows, &store.value());
    StreamTransformOptions stream;
    stream.transform = transform;
    auto streamed = StreamTransformMoments(store.value(), stream);
    ASSERT_TRUE(streamed.ok());
    ExpectMomentsIdentical(memory.value(), streamed.value());
  }
}

TEST(StoreEquivalenceTest, PooledCovarianceIdentical) {
  const Table table = FdTable(300);
  TransformOptions transform;
  transform.pooled_covariance = true;
  auto memory = PairTransformMoments(table, transform);
  ASSERT_TRUE(memory.ok());
  auto store = ChunkedTable::Create(table.schema(), "");
  ASSERT_TRUE(store.ok());
  AppendInChunks(table, 7, &store.value());
  StreamTransformOptions stream;
  stream.transform = transform;
  auto streamed = StreamTransformMoments(store.value(), stream);
  ASSERT_TRUE(streamed.ok());
  ExpectMomentsIdentical(memory.value(), streamed.value());
}

void ExpectResultsIdentical(const FdxResult& memory, const FdxResult& store) {
  EXPECT_EQ(memory.fds, store.fds);
  EXPECT_EQ(memory.ordering, store.ordering);
  EXPECT_EQ(memory.transform_samples, store.transform_samples);
  ExpectMatrixIdentical(memory.theta, store.theta);
  ExpectMatrixIdentical(memory.autoregression, store.autoregression);
}

TEST(StoreEquivalenceTest, DiscoverIdenticalAcrossGrid) {
  const Table table = FdTable(600);
  for (size_t threads : kThreadCounts) {
    FdxOptions options;
    options.threads = threads;
    const FdxDiscoverer discoverer(options);
    auto memory = discoverer.Discover(table);
    ASSERT_TRUE(memory.ok());
    EXPECT_FALSE(memory.value().fds.empty());
    for (size_t chunk_rows : kChunkSizes) {
      auto store = ChunkedTable::Create(table.schema(), "");
      ASSERT_TRUE(store.ok());
      AppendInChunks(table, chunk_rows, &store.value());
      StoreDiscoverOptions store_options;
      store_options.fdx = options;
      auto streamed = DiscoverFromStore(store.value(), store_options);
      ASSERT_TRUE(streamed.ok())
          << chunk_rows << "x" << threads << ": "
          << streamed.status().message();
      ExpectResultsIdentical(memory.value(), streamed.value());
    }
  }
}

TEST(StoreEquivalenceTest, SpilledStoreDiscoverIdentical) {
  const std::string dir =
      ::testing::TempDir() + "fdx_store_equiv_spilled";
  (void)RemoveDirectoryRecursive(dir);
  const Table table = FdTable(500);
  const FdxDiscoverer discoverer{FdxOptions{}};
  auto memory = discoverer.Discover(table);
  ASSERT_TRUE(memory.ok());
  {
    auto store = ChunkedTable::Create(table.schema(), dir);
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 123, &store.value());
  }
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_TRUE(reopened.ok());
  StoreDiscoverOptions store_options;
  store_options.column_cache_bytes = 2 * 500 * sizeof(int32_t);
  auto streamed = DiscoverFromStore(reopened.value(), store_options);
  ASSERT_TRUE(streamed.ok());
  ExpectResultsIdentical(memory.value(), streamed.value());
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreEquivalenceTest, CompressedSpilledBoundedDiscoverIdentical) {
  // The whole out-of-core stack at once: varint-compressed spilled
  // store, reopened, bounded cache (wave schedule), multiple threads —
  // end-to-end DiscoverFromStore must equal the in-memory Discover.
  const std::string dir =
      ::testing::TempDir() + "fdx_store_equiv_compressed";
  (void)RemoveDirectoryRecursive(dir);
  const Table table = FdTable(500);
  FdxOptions options;
  options.threads = 8;
  const FdxDiscoverer discoverer(options);
  auto memory = discoverer.Discover(table);
  ASSERT_TRUE(memory.ok());
  {
    auto store = ChunkedTable::Create(table.schema(), dir, "varint");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 123, &store.value());
  }
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().codec(), "varint");
  StoreDiscoverOptions store_options;
  store_options.fdx = options;
  store_options.column_cache_bytes = 3 * 500 * sizeof(int32_t);
  auto streamed = DiscoverFromStore(reopened.value(), store_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  ExpectResultsIdentical(memory.value(), streamed.value());
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreEquivalenceTest, HeaderlessCsvAppendIdentical) {
  // Headerless ingest: synthesized col<i> names, chunked at a boundary
  // that splits mid-dictionary-growth.
  std::string csv;
  for (int r = 0; r < 120; ++r) {
    csv += std::to_string(r % 9) + "," + std::to_string((r % 9) * 10) + "," +
           (r % 13 == 0 ? "NULL" : std::to_string(r % 4)) + "\n";
  }
  CsvOptions options;
  options.has_header = false;
  auto whole = ReadCsvFromString(csv, options);
  ASSERT_TRUE(whole.ok());
  const FdxDiscoverer discoverer{FdxOptions{}};
  auto memory = discoverer.Discover(whole.value());
  ASSERT_TRUE(memory.ok());

  ChunkedTable store;
  bool created = false;
  const Status read = ReadCsvChunkedFromString(
      csv, options, /*chunk_rows=*/7, [&](Table&& chunk) -> Status {
        if (!created) {
          FDX_ASSIGN_OR_RETURN(store, ChunkedTable::Create(chunk.schema(), ""));
          created = true;
        }
        if (chunk.num_rows() == 0) return Status::OK();
        return store.AppendBatch(chunk);
      });
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(created);
  auto streamed = DiscoverFromStore(store, {});
  ASSERT_TRUE(streamed.ok());
  ExpectResultsIdentical(memory.value(), streamed.value());
}

TEST(StoreEquivalenceTest, DegenerateShapesMatchInMemoryBehaviour) {
  // Single row / single column: Discover returns the empty diagnosed
  // result; DiscoverFromStore must do the same.
  Table one_row{Schema({"a", "b"})};
  one_row.AppendRow({Value(int64_t{1}), Value(int64_t{2})});
  auto store = ChunkedTable::Create(one_row.schema(), "");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AppendBatch(one_row).ok());
  const FdxDiscoverer discoverer{FdxOptions{}};
  auto memory = discoverer.Discover(one_row);
  auto streamed = DiscoverFromStore(store.value(), {});
  ASSERT_TRUE(memory.ok());
  ASSERT_TRUE(streamed.ok());
  EXPECT_TRUE(streamed.value().fds.empty());
  ASSERT_EQ(streamed.value().diagnostics.events.size(), 1u);
  EXPECT_EQ(streamed.value().diagnostics.events[0].detail,
            memory.value().diagnostics.events[0].detail);
}

}  // namespace
}  // namespace fdx
