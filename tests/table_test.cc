#include <gtest/gtest.h>

#include <set>

#include "data/table.h"

namespace fdx {
namespace {

Table MakeTable() {
  Table t{Schema({"a", "b", "c"})};
  t.AppendRow({Value(int64_t{1}), Value(std::string("x")), Value::Null()});
  t.AppendRow({Value(int64_t{2}), Value(std::string("y")), Value(1.5)});
  t.AppendRow({Value(int64_t{1}), Value(std::string("x")), Value(1.5)});
  return t;
}

TEST(SchemaTest, FindByName) {
  Schema s({"alpha", "beta"});
  EXPECT_EQ(s.Find("alpha"), 0);
  EXPECT_EQ(s.Find("beta"), 1);
  EXPECT_EQ(s.Find("gamma"), -1);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.name(1), "beta");
}

TEST(TableTest, DimensionsAndCells) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.cell(0, 0).AsInt(), 1);
  EXPECT_TRUE(t.cell(0, 2).is_null());
  t.set_cell(0, 2, Value(9.0));
  EXPECT_DOUBLE_EQ(t.cell(0, 2).AsDouble(), 9.0);
}

TEST(TableTest, ShuffleRowsPreservesRowIntegrity) {
  Table t = MakeTable();
  Rng rng(5);
  Table shuffled = t.ShuffleRows(&rng);
  EXPECT_EQ(shuffled.num_rows(), 3u);
  // Each original (a, b) pairing must survive as a row.
  std::set<std::string> original, after;
  for (size_t r = 0; r < 3; ++r) {
    original.insert(t.cell(r, 0).ToString() + "|" + t.cell(r, 1).ToString());
    after.insert(shuffled.cell(r, 0).ToString() + "|" +
                 shuffled.cell(r, 1).ToString());
  }
  EXPECT_EQ(original, after);
}

TEST(TableTest, HeadTruncates) {
  Table t = MakeTable();
  EXPECT_EQ(t.Head(2).num_rows(), 2u);
  EXPECT_EQ(t.Head(99).num_rows(), 3u);
  EXPECT_EQ(t.Head(0).num_rows(), 0u);
}

TEST(TableTest, SelectColumns) {
  Table t = MakeTable();
  Table sel = t.SelectColumns({2, 0});
  EXPECT_EQ(sel.num_columns(), 2u);
  EXPECT_EQ(sel.schema().name(0), "c");
  EXPECT_EQ(sel.schema().name(1), "a");
  EXPECT_EQ(sel.cell(1, 1).AsInt(), 2);
}

TEST(EncodedTableTest, CodesAndCardinalities) {
  Table t = MakeTable();
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_EQ(e.num_rows(), 3u);
  EXPECT_EQ(e.num_columns(), 3u);
  // Column a: values 1, 2, 1 -> codes 0, 1, 0.
  EXPECT_EQ(e.code(0, 0), e.code(2, 0));
  EXPECT_NE(e.code(0, 0), e.code(1, 0));
  EXPECT_EQ(e.Cardinality(0), 2u);
  // Column c has a null.
  EXPECT_EQ(e.code(0, 2), EncodedTable::kNullCode);
  EXPECT_EQ(e.NullCount(2), 1u);
  EXPECT_EQ(e.Cardinality(2), 1u);  // 1.5 twice
  EXPECT_EQ(e.code(1, 2), e.code(2, 2));
}

TEST(EncodedTableTest, NumericCrossTypeShareCodes) {
  Table t{Schema({"x"})};
  t.AppendRow({Value(int64_t{3})});
  t.AppendRow({Value(3.0)});
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_EQ(e.code(0, 0), e.code(1, 0));
  EXPECT_EQ(e.Cardinality(0), 1u);
}

TEST(EncodedTableTest, EmptyTable) {
  Table t{Schema({"x"})};
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_EQ(e.num_rows(), 0u);
  EXPECT_EQ(e.Cardinality(0), 0u);
}

}  // namespace
}  // namespace fdx
