#include <gtest/gtest.h>

#include "eval/report.h"
#include "eval/runner.h"
#include "synth/generator.h"

namespace fdx {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // All header cells on the first line.
  const std::string first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find("value"), std::string::npos);
}

TEST(ReportTableTest, MissingCellsRenderEmpty) {
  ReportTable table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NO_THROW({ table.ToString(); });
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(RunnerTest, AllMethodsListedInPaperOrder) {
  auto methods = AllMethods();
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(MethodName(methods[0]), "FDX");
  EXPECT_EQ(MethodName(methods[1]), "GL");
  EXPECT_EQ(MethodName(methods[2]), "PYRO");
  EXPECT_EQ(MethodName(methods[3]), "TANE");
  EXPECT_EQ(MethodName(methods[4]), "CORDS");
  EXPECT_EQ(MethodName(methods[5]), "RFI(.3)");
  EXPECT_EQ(MethodName(methods[7]), "RFI(1.0)");
}

TEST(RunnerTest, RunsEveryMethodOnSmallData) {
  SyntheticConfig config;
  config.num_tuples = 200;
  config.num_attributes = 6;
  config.seed = 1;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  RunnerConfig runner;
  runner.time_budget_seconds = 30;
  runner.rfi_max_lhs = 2;
  for (MethodId method : AllMethods()) {
    RunOutcome outcome = RunMethod(method, ds->noisy, runner);
    EXPECT_TRUE(outcome.ok) << MethodName(method) << ": " << outcome.error;
    EXPECT_GE(outcome.seconds, 0.0);
  }
}

TEST(RunnerTest, TimeoutSurfacesAsTimeoutFlag) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 24;
  config.seed = 2;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  RunnerConfig runner;
  runner.time_budget_seconds = 1e-6;
  RunOutcome outcome = RunMethod(MethodId::kTane, ds->noisy, runner);
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.timeout);
}

}  // namespace
}  // namespace fdx
