#include "store/chunked_table.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "data/csv.h"
#include "data/table.h"
#include "util/file_io.h"

namespace fdx {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "fdx_store_" + tag + "_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  (void)RemoveDirectoryRecursive(dir);
  return dir;
}

/// A mixed-type table exercising every dictionary corner: numeric merge
/// (int 3 vs double 3.0), signed zero, nulls, strings that look numeric.
Table MixedTable(size_t rows) {
  Table table{Schema({"a", "b", "c"})};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    switch (r % 5) {
      case 0:
        row[0] = Value(int64_t{3});
        break;
      case 1:
        row[0] = Value(3.0);
        break;
      case 2:
        row[0] = Value(std::string("3"));
        break;
      case 3:
        row[0] = Value(-0.0);
        break;
      default:
        row[0] = Value::Null();
        break;
    }
    row[1] = Value(static_cast<int64_t>(r % 7));
    row[2] = r % 11 == 0 ? Value::Null()
                         : Value("s" + std::to_string(r % 4));
    table.AppendRow(std::move(row));
  }
  return table;
}

/// Appends `table` to `store` in chunks of `chunk_rows` rows.
void AppendInChunks(const Table& table, size_t chunk_rows,
                    ChunkedTable* store) {
  for (size_t lo = 0; lo < table.num_rows(); lo += chunk_rows) {
    const size_t hi = std::min(table.num_rows(), lo + chunk_rows);
    Table batch{table.schema()};
    std::vector<Value> row(table.num_columns());
    for (size_t r = lo; r < hi; ++r) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row[c] = table.cell(r, c);
      }
      batch.AppendRow(row);
    }
    ASSERT_TRUE(store->AppendBatch(batch).ok());
  }
}

void ExpectCodesMatchEncode(const Table& table, const ChunkedTable& store) {
  const EncodedTable encoded = EncodedTable::Encode(table);
  ASSERT_EQ(store.num_rows(), encoded.num_rows());
  ASSERT_EQ(store.num_columns(), encoded.num_columns());
  for (size_t c = 0; c < store.num_columns(); ++c) {
    EXPECT_EQ(store.Cardinality(c), encoded.Cardinality(c)) << "col " << c;
    EXPECT_EQ(store.NullCount(c), encoded.NullCount(c)) << "col " << c;
    std::vector<int32_t> codes;
    ASSERT_TRUE(store.ReadColumnCodes(c, &codes).ok());
    EXPECT_EQ(codes, encoded.column_codes(c)) << "col " << c;
  }
}

TEST(ChunkedTableTest, TransformCodesMatchEncodeAtEveryChunkSize) {
  const Table table = MixedTable(233);
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{100}, size_t{233},
                            size_t{1000}}) {
    auto store = ChunkedTable::Create(table.schema(), "");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, chunk_rows, &store.value());
    ExpectCodesMatchEncode(table, store.value());
  }
}

TEST(ChunkedTableTest, ExactValueRoundTrip) {
  const Table table = MixedTable(40);
  auto store = ChunkedTable::Create(table.schema(), "");
  ASSERT_TRUE(store.ok());
  AppendInChunks(table, 9, &store.value());

  size_t row = 0;
  for (size_t chunk = 0; chunk < store.value().num_chunks(); ++chunk) {
    auto values = store.value().ReadChunkValues(chunk);
    ASSERT_TRUE(values.ok());
    for (size_t r = 0; r < values.value().num_rows(); ++r, ++row) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Value& expected = table.cell(row, c);
        const Value& got = values.value().cell(r, c);
        ASSERT_EQ(static_cast<int>(got.type()),
                  static_cast<int>(expected.type()))
            << "row " << row << " col " << c;
        if (!expected.is_null()) {
          EXPECT_TRUE(got.EqualsStrict(expected))
              << "row " << row << " col " << c;
        }
        if (expected.type() == ValueType::kDouble) {
          // Bit-exact doubles: -0.0 must come back signed.
          EXPECT_EQ(std::signbit(got.AsDouble()),
                    std::signbit(expected.AsDouble()));
        }
      }
    }
  }
  EXPECT_EQ(row, table.num_rows());
}

TEST(ChunkedTableTest, NumericMergeSharesTransformCodeNotStorageCode) {
  Table table{Schema({"x"})};
  table.AppendRow({Value(int64_t{3})});
  table.AppendRow({Value(3.0)});
  table.AppendRow({Value(std::string("3"))});
  auto store = ChunkedTable::Create(table.schema(), "");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AppendBatch(table).ok());

  // int 3 and double 3.0 are one transform value (EncodedTable
  // semantics) but distinct storage values (exact round-trip).
  EXPECT_EQ(store.value().Cardinality(0), 2u);
  EXPECT_EQ(store.value().DictionarySize(0), 3u);
  std::vector<int32_t> codes;
  ASSERT_TRUE(store.value().ReadColumnCodes(0, &codes).ok());
  EXPECT_EQ(codes, (std::vector<int32_t>{0, 0, 1}));
}

TEST(ChunkedTableTest, SpillReopenPreservesEverything) {
  const std::string dir = FreshDir("reopen");
  const Table table = MixedTable(120);
  {
    auto store = ChunkedTable::Create(table.schema(), dir);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.value().spilled());
    AppendInChunks(table, 17, &store.value());
    ExpectCodesMatchEncode(table, store.value());
  }
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().schema().names(), table.schema().names());
  ExpectCodesMatchEncode(table, reopened.value());

  // Appending after reopen continues the dictionaries seamlessly.
  Table more{table.schema()};
  more.AppendRow({Value(int64_t{3}), Value(int64_t{99}), Value::Null()});
  ASSERT_TRUE(reopened.value().AppendBatch(more).ok());
  Table concat = table;
  concat.AppendRow({Value(int64_t{3}), Value(int64_t{99}), Value::Null()});
  ExpectCodesMatchEncode(concat, reopened.value());
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(ChunkedTableTest, ReopenedFingerprintsMatchWriter) {
  const std::string dir = FreshDir("fp");
  const Table table = MixedTable(50);
  std::vector<std::string> written;
  {
    auto store = ChunkedTable::Create(table.schema(), dir);
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 20, &store.value());
    for (size_t i = 0; i < store.value().num_chunks(); ++i) {
      written.push_back(store.value().ChunkFingerprintHex(i));
    }
  }
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().num_chunks(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(reopened.value().ChunkFingerprintHex(i), written[i]);
  }
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(ChunkedTableTest, CorruptChunkFailsLoudly) {
  const std::string dir = FreshDir("corrupt");
  {
    auto store = ChunkedTable::Create(Schema({"a", "b", "c"}), dir);
    ASSERT_TRUE(store.ok());
    AppendInChunks(MixedTable(60), 30, &store.value());
  }
  // Flip one byte in the middle of the first chunk's code region.
  const std::string victim = dir + "/chunk-000000.bin";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(40);
    f.write(&byte, 1);
  }
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIOError);
  EXPECT_NE(reopened.status().message().find("fingerprint mismatch"),
            std::string::npos);
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(ChunkedTableTest, RejectsBadBatches) {
  auto store = ChunkedTable::Create(Schema({"a", "b"}), "");
  ASSERT_TRUE(store.ok());
  Table empty{Schema({"a", "b"})};
  EXPECT_EQ(store.value().AppendBatch(empty).code(),
            StatusCode::kInvalidArgument);
  Table narrow{Schema({"a"})};
  narrow.AppendRow({Value(int64_t{1})});
  EXPECT_EQ(store.value().AppendBatch(narrow).code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkedTableTest, ChunkedCsvIngestMatchesWholeFileRead) {
  const std::string csv =
      "city,state,zip\n"
      "boston,ma,02134\n"
      "chicago,il,60606\n"
      "boston,ma,02134\n"
      "NULL,ma,02134\n"
      "denver,co,80202\n";
  auto whole = ReadCsvFromString(csv, {});
  ASSERT_TRUE(whole.ok());

  auto store = ChunkedTable::Create(Schema({"city", "state", "zip"}), "");
  ASSERT_TRUE(store.ok());
  const Status read = ReadCsvChunkedFromString(
      csv, {}, /*chunk_rows=*/2, [&](Table&& chunk) {
        if (chunk.num_rows() == 0) return Status::OK();
        return store.value().AppendBatch(chunk);
      });
  ASSERT_TRUE(read.ok());
  ExpectCodesMatchEncode(whole.value(), store.value());
}

}  // namespace
}  // namespace fdx
