// Bit-identity of the runtime-dispatched SIMD kernels: every level's
// gather / pack / popcount output must equal the scalar fallback's
// exactly (integer kernels, so "close" is not a thing — bytes or bust),
// and the full transform pipeline must produce identical packed bits
// and moments at every dispatch level.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pairs.h"
#include "core/transform.h"
#include "data/table.h"
#include "linalg/bitmatrix.h"
#include "linalg/simd.h"
#include "util/rng.h"

namespace fdx {
namespace {

/// Restores the ambient dispatch level even when a test fails mid-way.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { ambient_ = ActiveSimdLevel(); }
  void TearDown() override { SetSimdLevel(ambient_); }

  /// Levels to cross-check: scalar always, plus the detected level when
  /// it differs. On a machine without vector support this degenerates
  /// to {scalar} and the test still passes (vacuous cross-check).
  static std::vector<SimdLevel> LevelsToTest() {
    std::vector<SimdLevel> levels = {SimdLevel::kScalar};
    if (DetectedSimdLevel() != SimdLevel::kScalar) {
      levels.push_back(DetectedSimdLevel());
    }
    // When AVX-512 is detected, AVX2 is a distinct intermediate table.
    if (DetectedSimdLevel() == SimdLevel::kAvx512) {
      levels.push_back(SimdLevel::kAvx2);
    }
    return levels;
  }

 private:
  SimdLevel ambient_ = SimdLevel::kScalar;
};

/// Random code stream over a small alphabet with nulls and tie runs —
/// the regime the pack compare actually sees (sorted codes arrive in
/// runs; nulls sort first).
std::vector<int32_t> RandomCodes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = rng.NextBernoulli(0.2)
                   ? EncodedTable::kNullCode
                   : static_cast<int32_t>(rng.NextInt(0, 4));
  }
  return codes;
}

const size_t kSizes[] = {1, 2, 63, 64, 65, 128, 130, 257, 1000};

TEST_F(SimdTest, DetectionAndOverrideAreConsistent) {
  const SimdLevel detected = DetectedSimdLevel();
  // Override requests clamp to the detected ceiling.
  EXPECT_EQ(SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdOps().level, SimdLevel::kScalar);
  const SimdLevel granted = SetSimdLevel(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(granted), static_cast<int>(detected));
  EXPECT_EQ(ActiveSimdLevel(), granted);
  // Every level resolves to a fully-populated kernel table.
  for (SimdLevel level : LevelsToTest()) {
    const SimdOps& ops = SimdOpsForLevel(level);
    EXPECT_EQ(ops.level, level) << SimdLevelName(level);
    EXPECT_NE(ops.gather_codes, nullptr);
    EXPECT_NE(ops.pack_adjacent_equal, nullptr);
    EXPECT_NE(ops.popcount_words, nullptr);
    EXPECT_NE(ops.popcount_and_words, nullptr);
  }
}

TEST_F(SimdTest, GatherMatchesScalarBitwise) {
  const SimdOps& scalar = SimdOpsForLevel(SimdLevel::kScalar);
  for (size_t n : kSizes) {
    const std::vector<int32_t> codes = RandomCodes(n, 11 + n);
    // A permutation with structure a stride-1 gather would not see.
    Rng rng(5 + n);
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    rng.Shuffle(&order);
    std::vector<int32_t> want(n);
    scalar.gather_codes(codes.data(), order.data(), n, want.data());
    for (SimdLevel level : LevelsToTest()) {
      const SimdOps& ops = SimdOpsForLevel(level);
      std::vector<int32_t> got(n, -7);
      ops.gather_codes(codes.data(), order.data(), n, got.data());
      EXPECT_EQ(got, want) << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST_F(SimdTest, PackAdjacentEqualMatchesScalarBitwise) {
  const SimdOps& scalar = SimdOpsForLevel(SimdLevel::kScalar);
  for (size_t n : kSizes) {
    const std::vector<int32_t> g = RandomCodes(n, 31 + n);
    const size_t nwords = (n - 1) / 64 + 1;
    std::vector<uint64_t> want(nwords, 0);
    const size_t want_packed = scalar.pack_adjacent_equal(
        g.data(), n, EncodedTable::kNullCode, want.data());
    EXPECT_EQ(want_packed, ((n - 1) / 64) * 64);
    // Scalar words agree with first principles.
    for (size_t j = 0; j < want_packed; ++j) {
      const uint64_t bit = (want[j / 64] >> (j % 64)) & 1;
      const uint64_t expect =
          (g[j] != EncodedTable::kNullCode && g[j] == g[j + 1]) ? 1 : 0;
      ASSERT_EQ(bit, expect) << "n=" << n << " j=" << j;
    }
    for (SimdLevel level : LevelsToTest()) {
      const SimdOps& ops = SimdOpsForLevel(level);
      std::vector<uint64_t> got(nwords, 0);
      const size_t packed = ops.pack_adjacent_equal(
          g.data(), n, EncodedTable::kNullCode, got.data());
      EXPECT_EQ(packed, want_packed) << SimdLevelName(level) << " n=" << n;
      for (size_t w = 0; w < packed / 64; ++w) {
        EXPECT_EQ(got[w], want[w])
            << SimdLevelName(level) << " n=" << n << " word=" << w;
      }
    }
  }
}

TEST_F(SimdTest, PopcountKernelsMatchScalarExactly) {
  const SimdOps& scalar = SimdOpsForLevel(SimdLevel::kScalar);
  Rng rng(77);
  for (size_t len : {0u, 1u, 3u, 4u, 5u, 8u, 63u, 64u, 129u}) {
    std::vector<uint64_t> a(len), b(len);
    for (size_t w = 0; w < len; ++w) {
      a[w] = (static_cast<uint64_t>(rng.engine()()) << 32) ^ rng.engine()();
      b[w] = (static_cast<uint64_t>(rng.engine()()) << 32) ^ rng.engine()();
    }
    const uint64_t want_self = scalar.popcount_words(a.data(), len);
    const uint64_t want_and =
        scalar.popcount_and_words(a.data(), b.data(), len);
    for (SimdLevel level : LevelsToTest()) {
      const SimdOps& ops = SimdOpsForLevel(level);
      EXPECT_EQ(ops.popcount_words(a.data(), len), want_self)
          << SimdLevelName(level) << " len=" << len;
      EXPECT_EQ(ops.popcount_and_words(a.data(), b.data(), len), want_and)
          << SimdLevelName(level) << " len=" << len;
    }
  }
  // All-ones / all-zeros edges.
  std::vector<uint64_t> ones(130, ~uint64_t{0});
  std::vector<uint64_t> zeros(130, 0);
  for (SimdLevel level : LevelsToTest()) {
    const SimdOps& ops = SimdOpsForLevel(level);
    EXPECT_EQ(ops.popcount_words(ones.data(), 130), 130u * 64u);
    EXPECT_EQ(ops.popcount_and_words(ones.data(), zeros.data(), 130), 0u);
  }
}

/// A table with ties (tiny domain) and ~20% nulls — the adversarial
/// regime for the null-never-matches rule in the vector compare.
Table NoisyTiedTable(size_t rows, size_t cols, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("a" + std::to_string(c));
  Table t{Schema(std::move(names))};
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBernoulli(0.2)) {
        row.emplace_back();  // null
      } else {
        row.emplace_back(Value(rng.NextInt(0, 3)));
      }
    }
    t.AppendRow(std::move(row));
  }
  return t;
}

TEST_F(SimdTest, FullTransformIsBitIdenticalAcrossLevels) {
  // End-to-end: packed bits and integer moments at every dispatch level
  // must equal the scalar run exactly, across word-boundary row counts
  // and both the exact and sampled pair regimes.
  for (size_t rows : {63u, 64u, 65u, 130u, 300u}) {
    const Table t = NoisyTiedTable(rows, 5, 900 + rows);
    for (size_t max_pairs : {size_t{0}, size_t{40}}) {
      TransformOptions options;
      options.seed = 17;
      options.max_pairs_per_attribute = max_pairs;
      SetSimdLevel(SimdLevel::kScalar);
      auto scalar_packed = PairTransformPacked(t, options);
      auto scalar_counts = PairTransformCounts(t, options);
      ASSERT_TRUE(scalar_packed.ok());
      ASSERT_TRUE(scalar_counts.ok());
      for (SimdLevel level : LevelsToTest()) {
        SetSimdLevel(level);
        auto packed = PairTransformPacked(t, options);
        auto counts = PairTransformCounts(t, options);
        ASSERT_TRUE(packed.ok()) << SimdLevelName(level);
        ASSERT_TRUE(counts.ok()) << SimdLevelName(level);
        EXPECT_TRUE(packed->IdenticalTo(*scalar_packed))
            << SimdLevelName(level) << " rows=" << rows
            << " max_pairs=" << max_pairs;
        EXPECT_EQ(counts->counts, scalar_counts->counts)
            << SimdLevelName(level);
        EXPECT_EQ(counts->co_counts, scalar_counts->co_counts)
            << SimdLevelName(level);
        EXPECT_EQ(counts->num_samples, scalar_counts->num_samples);
      }
    }
  }
}

TEST_F(SimdTest, UnpackRowsMatchesGetAcrossWordBoundaries) {
  // The column-blocked unpack must agree with bit-level Get() on every
  // cell of ranges that start/end mid-word and span block boundaries.
  Rng rng(123);
  BitMatrix bits(300, 7);
  for (size_t r = 0; r < 300; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      if (rng.NextBernoulli(0.4)) bits.Set(r, c);
    }
  }
  const struct {
    size_t lo, hi;
  } ranges[] = {{0, 300}, {0, 64}, {17, 193}, {63, 65}, {128, 256}, {299, 300}};
  for (const auto& range : ranges) {
    Matrix dense(300, 7);
    bits.UnpackRows(range.lo, range.hi, &dense);
    for (size_t r = range.lo; r < range.hi; ++r) {
      for (size_t c = 0; c < 7; ++c) {
        ASSERT_EQ(dense(r, c), bits.Get(r, c) ? 1.0 : 0.0)
            << "range=[" << range.lo << "," << range.hi << ") r=" << r
            << " c=" << c;
      }
    }
  }
}

}  // namespace
}  // namespace fdx
