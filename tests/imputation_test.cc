#include <gtest/gtest.h>

#include <memory>

#include "imputation/decision_tree.h"
#include "imputation/harness.h"
#include "imputation/logistic.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace fdx {
namespace {

/// y = (x0 + x1) % 4 with optional label noise; x2 is a distractor.
CategoricalDataset MakeModularDataset(size_t n, double noise,
                                      uint64_t seed) {
  Rng rng(seed);
  CategoricalDataset data;
  data.cardinalities = {4, 4, 4};
  data.num_classes = 4;
  for (size_t i = 0; i < n; ++i) {
    const int32_t x0 = static_cast<int32_t>(rng.NextInt(0, 3));
    const int32_t x1 = static_cast<int32_t>(rng.NextInt(0, 3));
    const int32_t x2 = static_cast<int32_t>(rng.NextInt(0, 3));
    int32_t y = (x0 + x1) % 4;
    if (rng.NextBernoulli(noise)) y = static_cast<int32_t>(rng.NextInt(0, 3));
    data.rows.push_back({x0, x1, x2});
    data.labels.push_back(y);
  }
  return data;
}

double Accuracy(const Classifier& model, const CategoricalDataset& data) {
  size_t correct = 0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    if (model.Predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.rows.size());
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
}

TEST(MacroF1Test, AllWrong) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 0, 0}, {1, 1, 1}, 2), 0.0);
}

TEST(MacroF1Test, HandComputedMixedCase) {
  // Class 0: tp=1, fn=1, fp=0 -> P=1, R=.5, F1=2/3.
  // Class 1: tp=1, fn=0, fp=1 -> P=.5, R=1, F1=2/3.
  EXPECT_NEAR(MacroF1({0, 0, 1}, {0, 1, 1}, 2), 2.0 / 3.0, 1e-12);
}

TEST(MacroF1Test, AbsentClassesSkipped) {
  // Only class 0 present in the truth.
  EXPECT_DOUBLE_EQ(MacroF1({0, 0}, {0, 0}, 5), 1.0);
}

TEST(MacroF1Test, EmptyInput) {
  EXPECT_DOUBLE_EQ(MacroF1({}, {}, 3), 0.0);
}

TEST(DecisionTreeTest, LearnsDeterministicMapping) {
  CategoricalDataset data = MakeModularDataset(2000, 0.0, 1);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Train(data).ok());
  EXPECT_GT(Accuracy(tree, data), 0.99);
}

TEST(DecisionTreeTest, DepthLimitCapsFit) {
  CategoricalDataset data = MakeModularDataset(2000, 0.0, 2);
  DecisionTreeOptions options;
  options.max_depth = 1;  // single split cannot express (x0 + x1) % 4
  DecisionTreeClassifier tree(options);
  ASSERT_TRUE(tree.Train(data).ok());
  EXPECT_LT(Accuracy(tree, data), 0.9);
}

TEST(DecisionTreeTest, HandlesMissingFeatures) {
  CategoricalDataset data = MakeModularDataset(500, 0.0, 3);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Train(data).ok());
  // Prediction with all features missing returns the root majority.
  const int32_t label = tree.Predict(
      {CategoricalDataset::kMissing, CategoricalDataset::kMissing,
       CategoricalDataset::kMissing});
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 4);
}

TEST(DecisionTreeTest, RejectsEmpty) {
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Train(CategoricalDataset{}).ok());
}

TEST(RandomForestTest, GeneralizesUnderLabelNoise) {
  CategoricalDataset train = MakeModularDataset(2000, 0.15, 4);
  CategoricalDataset test = MakeModularDataset(500, 0.0, 5);
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Train(train).ok());
  EXPECT_GT(Accuracy(forest, test), 0.8);
}

TEST(LogisticTest, LearnsLinearlySeparableMapping) {
  // y = x0 (direct copy) is linearly separable in one-hot space.
  Rng rng(6);
  CategoricalDataset data;
  data.cardinalities = {5, 5};
  data.num_classes = 5;
  for (int i = 0; i < 1500; ++i) {
    const int32_t x0 = static_cast<int32_t>(rng.NextInt(0, 4));
    data.rows.push_back({x0, static_cast<int32_t>(rng.NextInt(0, 4))});
    data.labels.push_back(x0);
  }
  LogisticClassifier model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_GT(Accuracy(model, data), 0.97);
}

TEST(LogisticTest, CapsOneHotDimensionality) {
  // Feature cardinality above max_values_per_feature must not break.
  Rng rng(7);
  CategoricalDataset data;
  data.cardinalities = {1000, 3};
  data.num_classes = 3;
  for (int i = 0; i < 300; ++i) {
    const int32_t x1 = static_cast<int32_t>(rng.NextInt(0, 2));
    data.rows.push_back({static_cast<int32_t>(rng.NextInt(0, 999)), x1});
    data.labels.push_back(x1);
  }
  LogisticOptions options;
  options.max_values_per_feature = 10;
  LogisticClassifier model(options);
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_GT(Accuracy(model, data), 0.9);
}

TEST(HarnessTest, FdTargetImputesBetterThanIndependentTarget) {
  // The core claim behind Table 7: attributes in FDs impute well.
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_attributes = 6;
  config.domain_min = 8;
  config.domain_max = 16;
  config.seed = 8;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  ASSERT_FALSE(ds->true_fds.empty());
  const size_t fd_target = ds->true_fds[0].rhs;
  // Find an attribute not in any FD.
  std::set<size_t> fd_attrs;
  for (const auto& fd : ds->true_fds) {
    fd_attrs.insert(fd.rhs);
    fd_attrs.insert(fd.lhs.begin(), fd.lhs.end());
  }
  size_t independent_target = 0;
  while (fd_attrs.count(independent_target) > 0) ++independent_target;
  ASSERT_LT(independent_target, 6u);

  const ClassifierFactory forest = [] {
    return std::make_unique<RandomForestClassifier>();
  };
  ImputationConfig imputation;
  auto with_fd = EvaluateImputation(ds->clean, fd_target, forest, imputation);
  auto without_fd =
      EvaluateImputation(ds->clean, independent_target, forest, imputation);
  ASSERT_TRUE(with_fd.ok());
  ASSERT_TRUE(without_fd.ok());
  EXPECT_GT(with_fd->macro_f1, without_fd->macro_f1 + 0.2);
}

TEST(HarnessTest, SystematicCorruptionWorks) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 6;
  config.seed = 9;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  ImputationConfig imputation;
  imputation.corruption = CorruptionKind::kSystematic;
  const ClassifierFactory logistic = [] {
    return std::make_unique<LogisticClassifier>();
  };
  auto score =
      EvaluateImputation(ds->clean, ds->true_fds[0].rhs, logistic, imputation);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->evaluated_cells, 0u);
}

TEST(HarnessTest, MaxRowsSubsamples) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 5;
  config.seed = 10;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  ImputationConfig imputation;
  imputation.max_rows = 400;
  const ClassifierFactory tree = [] {
    return std::make_unique<DecisionTreeClassifier>();
  };
  auto score =
      EvaluateImputation(ds->clean, ds->true_fds[0].rhs, tree, imputation);
  ASSERT_TRUE(score.ok());
  EXPECT_LE(score->evaluated_cells, 400u);
}

TEST(HarnessTest, RejectsBadTarget) {
  SyntheticConfig config;
  config.seed = 11;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  const ClassifierFactory tree = [] {
    return std::make_unique<DecisionTreeClassifier>();
  };
  EXPECT_FALSE(EvaluateImputation(ds->clean, 999, tree, {}).ok());
}

}  // namespace
}  // namespace fdx
