#include <gtest/gtest.h>

#include <cmath>

#include "linalg/factorization.h"
#include "linalg/lasso.h"
#include "util/rng.h"

namespace fdx {
namespace {

TEST(SoftThresholdTest, Cases) {
  EXPECT_DOUBLE_EQ(SoftThreshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(2.0, 0.0), 2.0);
}

TEST(QuadraticLassoTest, ZeroPenaltyMatchesExactSolve) {
  // With lambda = 0 the solution is Q^{-1} c.
  Matrix q = Matrix::FromRows({{4, 1}, {1, 3}});
  Vector c = {1, 2};
  LassoOptions options;
  options.lambda = 0.0;
  options.tolerance = 1e-12;
  options.max_iterations = 10000;
  Vector beta;
  ASSERT_TRUE(SolveQuadraticLasso(q, c, options, &beta).ok());
  auto exact = SolveSpd(q, c);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(beta[0], (*exact)[0], 1e-8);
  EXPECT_NEAR(beta[1], (*exact)[1], 1e-8);
}

TEST(QuadraticLassoTest, DiagonalCaseHasClosedForm) {
  // Q = I: beta_l = Soft(c_l, lambda).
  Matrix q = Matrix::Identity(3);
  Vector c = {2.0, -0.3, 0.9};
  LassoOptions options;
  options.lambda = 0.5;
  Vector beta;
  ASSERT_TRUE(SolveQuadraticLasso(q, c, options, &beta).ok());
  EXPECT_NEAR(beta[0], 1.5, 1e-9);
  EXPECT_NEAR(beta[1], 0.0, 1e-9);
  EXPECT_NEAR(beta[2], 0.4, 1e-9);
}

TEST(QuadraticLassoTest, LargePenaltyZeroesEverything) {
  Matrix q = Matrix::FromRows({{2, 0.5}, {0.5, 2}});
  Vector c = {1, -1};
  LassoOptions options;
  options.lambda = 100.0;
  Vector beta;
  ASSERT_TRUE(SolveQuadraticLasso(q, c, options, &beta).ok());
  EXPECT_DOUBLE_EQ(beta[0], 0.0);
  EXPECT_DOUBLE_EQ(beta[1], 0.0);
}

TEST(QuadraticLassoTest, SparsityMonotoneInLambda) {
  Rng rng(7);
  const size_t p = 10;
  Matrix m(p, p);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) m(i, j) = rng.NextGaussian();
  }
  Matrix q = m.Multiply(m.Transpose());
  for (size_t i = 0; i < p; ++i) q(i, i) += 1.0;
  Vector c(p);
  for (double& v : c) v = rng.NextGaussian();
  size_t previous_nonzeros = p + 1;
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    LassoOptions options;
    options.lambda = lambda;
    options.max_iterations = 5000;
    Vector beta;
    ASSERT_TRUE(SolveQuadraticLasso(q, c, options, &beta).ok());
    size_t nonzeros = 0;
    for (double b : beta) {
      if (b != 0.0) ++nonzeros;
    }
    EXPECT_LE(nonzeros, previous_nonzeros);
    previous_nonzeros = nonzeros;
  }
}

TEST(QuadraticLassoTest, RejectsDimensionMismatch) {
  Vector beta;
  EXPECT_FALSE(
      SolveQuadraticLasso(Matrix(2, 2, 1.0), {1, 2, 3}, {}, &beta).ok());
}

TEST(QuadraticLassoTest, RejectsNonPositiveDiagonal) {
  Matrix q(2, 2);  // zero diagonal
  Vector beta;
  EXPECT_FALSE(SolveQuadraticLasso(q, {1, 1}, {}, &beta).ok());
}

TEST(LassoRegressionTest, RecoversSparseSignal) {
  // y = 3 * x0 - 2 * x4 + noise; other 6 coefficients are zero.
  Rng rng(11);
  const size_t n = 400, p = 8;
  Matrix x(n, p);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) x(i, j) = rng.NextGaussian();
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 4) + 0.05 * rng.NextGaussian();
  }
  LassoOptions options;
  options.lambda = 0.1;
  options.max_iterations = 5000;
  auto beta = SolveLassoRegression(x, y, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 0.2);
  EXPECT_NEAR((*beta)[4], -2.0, 0.2);
  for (size_t j : {1, 2, 3, 5, 6, 7}) {
    EXPECT_LT(std::fabs((*beta)[j]), 0.1) << "coefficient " << j;
  }
}

TEST(LassoRegressionTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(SolveLassoRegression(Matrix(0, 2), {}, {}).ok());
  EXPECT_FALSE(SolveLassoRegression(Matrix(3, 2), {1.0, 2.0}, {}).ok());
}

}  // namespace
}  // namespace fdx
