#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/cords.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace fdx {
namespace {

bool ContainsFd(const FdSet& fds, size_t lhs, size_t rhs) {
  return std::find(fds.begin(), fds.end(),
                   FunctionalDependency({lhs}, rhs)) != fds.end();
}

Table DeterministicPair(size_t n, uint64_t seed, double flip_rate) {
  Table t{Schema({"x", "y", "noise"})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = rng.NextInt(0, 7);
    const int64_t y =
        rng.NextBernoulli(flip_rate) ? rng.NextInt(0, 7) : (x * 5 + 2) % 8;
    t.AppendRow({Value(x), Value(y), Value(rng.NextInt(0, 7))});
  }
  return t;
}

TEST(ChiSquaredTest, IndependentColumnsScoreLow) {
  Table t{Schema({"a", "b"})};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 3)), Value(rng.NextInt(0, 3))});
  }
  EncodedTable e = EncodedTable::Encode(t);
  std::vector<size_t> rows(1000);
  std::iota(rows.begin(), rows.end(), 0);
  ChiSquared chi = ChiSquaredTest(e, 0, 1, rows);
  EXPECT_EQ(chi.dof, 9u);
  // Under independence, E[statistic] = dof; allow generous slack.
  EXPECT_LT(chi.statistic, 30.0);
}

TEST(ChiSquaredTest, DependentColumnsScoreHigh) {
  Table t = DeterministicPair(1000, 2, 0.0);
  EncodedTable e = EncodedTable::Encode(t);
  std::vector<size_t> rows(1000);
  std::iota(rows.begin(), rows.end(), 0);
  ChiSquared chi = ChiSquaredTest(e, 0, 1, rows);
  EXPECT_GT(chi.statistic, 10.0 * static_cast<double>(chi.dof));
}

TEST(ChiSquaredTest, DegenerateColumnGivesZeroDof) {
  Table t{Schema({"a", "b"})};
  for (int i = 0; i < 10; ++i) {
    t.AppendRow({Value(int64_t{1}), Value(int64_t{i % 2})});
  }
  EncodedTable e = EncodedTable::Encode(t);
  std::vector<size_t> rows(10);
  std::iota(rows.begin(), rows.end(), 0);
  EXPECT_EQ(ChiSquaredTest(e, 0, 1, rows).dof, 0u);
}

TEST(CordsTest, DetectsCleanSoftFd) {
  Table t = DeterministicPair(1000, 3, 0.0);
  auto fds = DiscoverCords(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, 0, 1)) << FdSetToString(*fds, t.schema());
  EXPECT_FALSE(ContainsFd(*fds, 0, 2));
  EXPECT_FALSE(ContainsFd(*fds, 2, 1));
}

TEST(CordsTest, ToleratesModerateNoise) {
  Table t = DeterministicPair(1000, 4, 0.05);
  auto fds = DiscoverCords(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, 0, 1));
}

TEST(CordsTest, SkipsSoftKeys) {
  // A unique id column would trivially determine everything.
  Table t{Schema({"id", "y"})};
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    t.AppendRow({Value(int64_t{i}), Value(rng.NextInt(0, 4))});
  }
  auto fds = DiscoverCords(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(ContainsFd(*fds, 0, 1));
}

TEST(CordsTest, OnlyUnaryFds) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 10;
  config.seed = 6;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverCords(ds->noisy, {});
  ASSERT_TRUE(fds.ok());
  for (const auto& fd : *fds) {
    EXPECT_EQ(fd.lhs.size(), 1u);
  }
}

TEST(CordsTest, StrengthThresholdControlsDetection) {
  Table t = DeterministicPair(1000, 7, 0.2);  // 20% corrupted
  CordsOptions strict;
  strict.strength_threshold = 0.95;
  auto none = DiscoverCords(t, strict);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(ContainsFd(*none, 0, 1));
  CordsOptions lax;
  lax.strength_threshold = 0.7;
  auto found = DiscoverCords(t, lax);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(ContainsFd(*found, 0, 1));
}

TEST(CordsTest, RejectsEmptyTable) {
  EXPECT_FALSE(DiscoverCords(Table(), {}).ok());
}

}  // namespace
}  // namespace fdx
