#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/pyro.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

bool ContainsFd(const FdSet& fds, std::vector<size_t> lhs, size_t rhs) {
  return std::find(fds.begin(), fds.end(),
                   FunctionalDependency(std::move(lhs), rhs)) != fds.end();
}

TEST(PyroTest, FindsUnaryExactFd) {
  Table t = TableFromCsv("x,y\n1,a\n2,b\n1,a\n2,b\n3,c\n3,c\n");
  PyroOptions options;
  options.max_error = 0.0;
  auto fds = DiscoverPyro(t, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, {0}, 1));
}

TEST(PyroTest, FindsCompositeFd) {
  Table t = TableFromCsv(
      "x,y,z\n0,0,a\n0,1,b\n1,0,b\n1,1,a\n0,0,a\n1,0,b\n0,1,b\n1,1,a\n");
  PyroOptions options;
  options.max_error = 0.0;
  auto fds = DiscoverPyro(t, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, {0, 1}, 2));
}

TEST(PyroTest, ReportedFdsAreMinimal) {
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_attributes = 8;
  config.seed = 1;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  PyroOptions options;
  options.max_error = 0.0;
  auto fds = DiscoverPyro(ds->clean, options);
  ASSERT_TRUE(fds.ok());
  // No reported FD's LHS may be a strict superset of another's with the
  // same RHS.
  for (const auto& a : *fds) {
    for (const auto& b : *fds) {
      if (&a == &b || a.rhs != b.rhs) continue;
      const bool a_superset_of_b =
          a.lhs.size() > b.lhs.size() &&
          std::includes(a.lhs.begin(), a.lhs.end(), b.lhs.begin(),
                        b.lhs.end());
      EXPECT_FALSE(a_superset_of_b)
          << a.ToString(ds->clean.schema()) << " vs "
          << b.ToString(ds->clean.schema());
    }
  }
}

TEST(PyroTest, ErrorToleranceAdmitsNoisyFds) {
  Table t{Schema({"x", "y"})};
  Rng rng(2);
  for (int i = 0; i < 800; ++i) {
    const int64_t x = rng.NextInt(0, 9);
    const int64_t y = rng.NextBernoulli(0.03) ? rng.NextInt(0, 9) : x;
    t.AppendRow({Value(x), Value(y)});
  }
  PyroOptions strict;
  strict.max_error = 0.0;
  auto exact = DiscoverPyro(t, strict);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(ContainsFd(*exact, {0}, 1));
  PyroOptions tolerant;
  tolerant.max_error = 0.05;  // g1 error of ~3% violations is well below
  auto approx = DiscoverPyro(t, tolerant);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(ContainsFd(*approx, {0}, 1));
}

TEST(PyroTest, HighRecallOnSyntheticData) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 12;
  config.noise_rate = 0.0;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  PyroOptions options;
  options.max_error = 0.0;
  auto fds = DiscoverPyro(ds->clean, options);
  ASSERT_TRUE(fds.ok());
  FdScore score = ScoreFds(*fds, ds->true_fds);
  EXPECT_GE(score.recall, 0.5);
  EXPECT_GT(fds->size(), ds->true_fds.size());  // enumeration overfits
}

TEST(PyroTest, TimeBudgetTriggersTimeout) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 25;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  PyroOptions options;
  options.time_budget_seconds = 1e-6;
  auto fds = DiscoverPyro(ds->clean, options);
  ASSERT_FALSE(fds.ok());
  EXPECT_EQ(fds.status().code(), StatusCode::kTimeout);
}

TEST(PyroTest, RejectsEmptyTable) {
  EXPECT_FALSE(DiscoverPyro(Table(), {}).ok());
}

TEST(PyroTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_tuples = 300;
  config.num_attributes = 8;
  config.seed = 5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  PyroOptions options;
  options.seed = 77;
  auto a = DiscoverPyro(ds->noisy, options);
  auto b = DiscoverPyro(ds->noisy, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace fdx
