#include <gtest/gtest.h>

#include "data/csv.h"
#include "fd/fd.h"

namespace fdx {
namespace {

TEST(FdTest, ConstructionNormalizes) {
  FunctionalDependency fd({3, 1, 3, 2}, 2);  // dedup, sort, drop rhs
  EXPECT_EQ(fd.lhs, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(fd.rhs, 2u);
}

TEST(FdTest, ToStringUsesSchemaNames) {
  Schema schema({"City", "State", "Zip"});
  FunctionalDependency fd({0, 1}, 2);
  EXPECT_EQ(fd.ToString(schema), "City,State -> Zip");
}

TEST(FdTest, EdgesCollapseDuplicates) {
  FdSet fds = {FunctionalDependency({0, 1}, 2), FunctionalDependency({0}, 2)};
  auto edges = FdEdges(fds);
  EXPECT_EQ(edges.size(), 2u);  // (0,2) and (1,2)
}

TEST(ScoreFdsTest, PerfectMatch) {
  FdSet truth = {FunctionalDependency({0, 1}, 2)};
  FdScore s = ScoreFds(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(ScoreFdsTest, PartialOverlap) {
  FdSet truth = {FunctionalDependency({0, 1}, 2)};       // edges (0,2),(1,2)
  FdSet got = {FunctionalDependency({0, 3}, 2)};          // edges (0,2),(3,2)
  FdScore s = ScoreFds(got, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(ScoreFdsTest, EmptyCases) {
  FdSet truth = {FunctionalDependency({0}, 1)};
  FdScore s = ScoreFds({}, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  FdScore both_empty = ScoreFds({}, {});
  EXPECT_DOUBLE_EQ(both_empty.f1, 1.0);
}

TEST(ScoreFdsTest, UndirectedCountsFlippedEdges) {
  FdSet truth = {FunctionalDependency({0}, 1)};
  FdSet flipped = {FunctionalDependency({1}, 0)};
  FdScore directed = ScoreFds(flipped, truth);
  EXPECT_DOUBLE_EQ(directed.f1, 0.0);
  FdScore undirected = ScoreFdsUndirected(flipped, truth);
  EXPECT_DOUBLE_EQ(undirected.precision, 1.0);
  EXPECT_DOUBLE_EQ(undirected.recall, 1.0);
}

TEST(ScoreFdsTest, UndirectedStillPenalizesWrongEdges) {
  FdSet truth = {FunctionalDependency({0}, 1)};
  FdSet got = {FunctionalDependency({2}, 3)};
  FdScore s = ScoreFdsUndirected(got, truth);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(FdHoldsTest, ExactFd) {
  Table t = TableFromCsv("x,y\n1,a\n2,b\n1,a\n2,b\n");
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_TRUE(FdHoldsExactly(e, FunctionalDependency({0}, 1)));
  EXPECT_TRUE(FdHoldsExactly(e, FunctionalDependency({1}, 0)));
}

TEST(FdHoldsTest, ViolatedFd) {
  Table t = TableFromCsv("x,y\n1,a\n1,b\n");
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_FALSE(FdHoldsExactly(e, FunctionalDependency({0}, 1)));
}

TEST(FdG3ErrorTest, CountsMinimumRemovals) {
  // Group x=1: y values a,a,b -> 1 violation of 3 considered rows;
  // group x=2: single row, fine. Total considered 4 -> error 0.25.
  Table t = TableFromCsv("x,y\n1,a\n1,a\n1,b\n2,c\n");
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_NEAR(FdG3Error(e, FunctionalDependency({0}, 1)), 0.25, 1e-12);
}

TEST(FdG3ErrorTest, NullRowsExcluded) {
  Table t = TableFromCsv("x,y\n1,a\n1,\n1,a\n");
  EncodedTable e = EncodedTable::Encode(t);
  // Null-y row not considered; remaining rows agree.
  EXPECT_DOUBLE_EQ(FdG3Error(e, FunctionalDependency({0}, 1)), 0.0);
}

TEST(FdG3ErrorTest, CompositeLhs) {
  Table t = TableFromCsv("a,b,y\n1,1,p\n1,2,q\n1,1,p\n1,2,r\n");
  EncodedTable e = EncodedTable::Encode(t);
  // Group (1,1): p,p fine. Group (1,2): q,r -> one removal. 1/4 error.
  EXPECT_NEAR(FdG3Error(e, FunctionalDependency({0, 1}, 2)), 0.25, 1e-12);
  // Single-attribute LHS a cannot determine y at all: a=1 group has
  // values p,q,p,r -> keep the 2 p's, remove 2 -> error 0.5.
  EXPECT_NEAR(FdG3Error(e, FunctionalDependency({0}, 2)), 0.5, 1e-12);
}

TEST(ParseFdTest, ParsesNamesWithWhitespace) {
  Schema schema({"City", "State", "Zip"});
  auto fd = ParseFd(schema, " City , State ->  Zip ");
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->lhs, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(fd->rhs, 2u);
}

TEST(ParseFdTest, RejectsMalformedInput) {
  Schema schema({"a", "b"});
  EXPECT_FALSE(ParseFd(schema, "a b").ok());          // no arrow
  EXPECT_FALSE(ParseFd(schema, "a -> c").ok());       // unknown RHS
  EXPECT_FALSE(ParseFd(schema, "c -> b").ok());       // unknown LHS
  EXPECT_FALSE(ParseFd(schema, "-> b").ok());         // empty LHS
  EXPECT_FALSE(ParseFd(schema, "a -> a").ok());       // trivial
}

TEST(ParseFdTest, RoundTripsToString) {
  Schema schema({"x", "y", "z"});
  const FunctionalDependency original({0, 2}, 1);
  auto parsed = ParseFd(schema, original.ToString(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(FdSetToStringTest, OnePerLine) {
  Schema schema({"a", "b", "c"});
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2)};
  EXPECT_EQ(FdSetToString(fds, schema), "a -> b\nb -> c\n");
}

}  // namespace
}  // namespace fdx
