#include "util/reservoir.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fdx {
namespace {

TEST(ReservoirTest, FixedSeedIsReproducible) {
  ReservoirSampler a(16, 99);
  ReservoirSampler b(16, 99);
  a.AddRange(0, 1000);
  b.AddRange(0, 1000);
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(a.Sorted(), b.Sorted());
  EXPECT_EQ(a.stream_size(), 1000u);
}

TEST(ReservoirTest, SelectionIndependentOfChunkBoundaries) {
  // The out-of-core contract: how the stream is sliced into Add calls
  // must not change the selection, only (budget, seed, stream) may.
  ReservoirSampler whole(32, 7);
  whole.AddRange(0, 5000);

  ReservoirSampler one_by_one(32, 7);
  for (uint32_t i = 0; i < 5000; ++i) one_by_one.Add(i);

  ReservoirSampler ragged(32, 7);
  ragged.AddRange(0, 1);
  ragged.AddRange(1, 8);
  ragged.AddRange(8, 1000);
  ragged.AddRange(1000, 1000);  // empty ranges are fine too
  ragged.AddRange(1000, 4999);
  ragged.Add(4999);

  EXPECT_EQ(whole.items(), one_by_one.items());
  EXPECT_EQ(whole.items(), ragged.items());
}

TEST(ReservoirTest, BudgetAtLeastStreamKeepsEverything) {
  ReservoirSampler sampler(100, 3);
  sampler.AddRange(0, 100);
  std::vector<uint32_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(sampler.Sorted(), expected);

  ReservoirSampler bigger(1000, 3);
  bigger.AddRange(0, 100);
  EXPECT_EQ(bigger.Sorted(), expected);
}

TEST(ReservoirTest, ZeroBudgetKeepsNothing) {
  ReservoirSampler sampler(0, 11);
  sampler.AddRange(0, 500);
  EXPECT_TRUE(sampler.items().empty());
  EXPECT_EQ(sampler.stream_size(), 500u);
}

TEST(ReservoirTest, SortedIsAscendingAndUnique) {
  ReservoirSampler sampler(64, 42);
  sampler.AddRange(0, 10000);
  const std::vector<uint32_t> sorted = sampler.Sorted();
  ASSERT_EQ(sorted.size(), 64u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1], sorted[i]);
  }
  for (uint32_t item : sorted) EXPECT_LT(item, 10000u);
}

TEST(ReservoirTest, DifferentSeedsDiverge) {
  ReservoirSampler a(32, 1);
  ReservoirSampler b(32, 2);
  a.AddRange(0, 5000);
  b.AddRange(0, 5000);
  EXPECT_NE(a.Sorted(), b.Sorted());
}

}  // namespace
}  // namespace fdx
