// Out-of-core fdxd sessions ("storage":"chunked"): responses must match
// memory sessions byte-for-byte, durability snapshots reference the
// chunk-store manifest instead of embedding rows, restarts replay the
// chunks to bit-identical results, and corrupted stores are dropped
// loudly instead of revived wrong.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "service/server.h"
#include "util/file_io.h"
#include "util/json_parser.h"
#include "util/socket.h"

namespace fdx {
namespace {

/// One-shot request helper (connect, one line out, one line in).
Result<std::string> Request(uint16_t port, const std::string& line) {
  FDX_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectLoopback(port));
  FDX_RETURN_IF_ERROR(sock.SendAll(line + "\n"));
  std::string response;
  FDX_RETURN_IF_ERROR(sock.ReadLine(&response));
  return response;
}

std::string RowsJson(int rows, int modulus, int offset = 0) {
  std::string json = "[";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) json += ",";
    const int a = (i + offset) % modulus;
    json += "[" + std::to_string(a) + "," + std::to_string(2 * a) + "," +
            std::to_string(i % 3) + "]";
  }
  return json + "]";
}

bool IsOk(const Result<std::string>& response) {
  if (!response.ok()) return false;
  auto parsed = JsonValue::Parse(*response);
  return parsed.ok() && parsed->BoolOr("ok", false);
}

class ChunkedSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    state_dir_ =
        ::testing::TempDir() + "fdx_store_state_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    (void)RemoveDirectoryRecursive(state_dir_);
  }

  void TearDown() override { (void)RemoveDirectoryRecursive(state_dir_); }

  ServerOptions DurableOptions() {
    ServerOptions options;
    options.state_dir = state_dir_;
    options.snapshot_interval_seconds = 60.0;  // no background spills mid-test
    return options;
  }

  std::string state_dir_;
};

TEST_F(ChunkedSessionTest, RejectsUnknownStorage) {
  FdxServer server{ServerOptions{}};
  ASSERT_TRUE(server.Start().ok());
  auto open = Request(
      server.port(), R"({"op":"open","schema":["a","b"],"storage":"tape"})");
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(JsonValue::Parse(*open)->BoolOr("ok", true)) << *open;
  EXPECT_NE(open->find("unknown storage"), std::string::npos) << *open;
  server.Shutdown();
}

TEST_F(ChunkedSessionTest, ChunkedSessionMatchesMemorySessionByteForByte) {
  // Non-durable server: chunked sessions work without a state dir (the
  // store keeps its chunks in memory) and must serve the exact bytes a
  // memory session serves for the same appends.
  FdxServer server{ServerOptions{}};
  ASSERT_TRUE(server.Start().ok());
  auto open_memory =
      Request(server.port(), R"({"op":"open","schema":["a","b","c"]})");
  ASSERT_TRUE(IsOk(open_memory)) << *open_memory;
  auto open_chunked = Request(
      server.port(),
      R"({"op":"open","schema":["a","b","c"],"storage":"chunked"})");
  ASSERT_TRUE(IsOk(open_chunked)) << *open_chunked;
  EXPECT_NE(open_chunked->find("\"storage\":\"chunked\""), std::string::npos)
      << *open_chunked;

  for (const char* session : {"s-1", "s-2"}) {
    auto a1 = Request(server.port(),
                      std::string(R"({"op":"append","session":")") + session +
                          R"(","rows":)" + RowsJson(24, 5) + "}");
    ASSERT_TRUE(IsOk(a1)) << *a1;
    auto a2 = Request(server.port(),
                      std::string(R"({"op":"append","session":")") + session +
                          R"(","rows":)" + RowsJson(12, 5, 2) + "}");
    ASSERT_TRUE(IsOk(a2)) << *a2;
  }
  auto memory = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  auto chunked = Request(server.port(), R"({"op":"discover","session":"s-2"})");
  ASSERT_TRUE(IsOk(memory)) << *memory;
  ASSERT_TRUE(IsOk(chunked)) << *chunked;
  EXPECT_EQ(*memory, *chunked);
  server.Shutdown();
}

TEST_F(ChunkedSessionTest, SnapshotReferencesStoreInsteadOfEmbeddingRows) {
  FdxServer server(DurableOptions());
  ASSERT_TRUE(server.Start().ok());
  auto open = Request(
      server.port(),
      R"({"op":"open","schema":["a","b","c"],"storage":"chunked"})");
  ASSERT_TRUE(IsOk(open)) << *open;
  auto append =
      Request(server.port(), R"({"op":"append","session":"s-1","rows":)" +
                                 RowsJson(24, 5) + "}");
  ASSERT_TRUE(IsOk(append)) << *append;

  // The chunk store holds the rows...
  auto manifest = ReadFileToString(state_dir_ + "/stores/s-1/manifest.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_NE(manifest->find("\"total_rows\":24"), std::string::npos)
      << *manifest;
  auto chunk = ReadFileToString(state_dir_ + "/stores/s-1/chunk-000000.bin");
  ASSERT_TRUE(chunk.ok());

  // ...and the session snapshot only references them: storage marker
  // present, no embedded batches.
  auto snapshot = ReadFileToString(state_dir_ + "/sessions/s-1.json");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot->find("\"storage\":\"chunked\""), std::string::npos)
      << *snapshot;
  EXPECT_EQ(snapshot->find("\"batches\""), std::string::npos) << *snapshot;
  server.Shutdown();
}

TEST_F(ChunkedSessionTest, RestartReplaysChunksBitIdentically) {
  std::string cold_response;
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    auto open = Request(
        server.port(),
        R"({"op":"open","schema":["a","b","c"],"storage":"chunked"})");
    ASSERT_TRUE(IsOk(open)) << *open;
    // Mixed appends: rows and CSV (with a null and a type change).
    ASSERT_TRUE(IsOk(Request(server.port(),
                             R"({"op":"append","session":"s-1","rows":)" +
                                 RowsJson(24, 5) + "}")));
    ASSERT_TRUE(IsOk(Request(
        server.port(),
        R"({"op":"append","session":"s-1","csv":"0,0,0\n1,2,1\n2,4,2\n1.5,x,\n"})")));
    auto cold = Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(IsOk(cold)) << *cold;
    cold_response = *cold;
    server.Shutdown();
  }
  // Drop the spilled result cache: the restarted server must *recompute*
  // the same bytes from the replayed chunks, not just re-serve them.
  (void)RemoveFile(state_dir_ + "/cache.json");
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.sessions_recovered(), 1u);
    EXPECT_EQ(server.sessions_recovery_failed(), 0u);
    auto warm = Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(*warm, cold_response);
    // The restored session keeps accepting appends, and the store keeps
    // growing through them.
    auto append =
        Request(server.port(), R"({"op":"append","session":"s-1","rows":)" +
                                   RowsJson(8, 5) + "}");
    ASSERT_TRUE(IsOk(append)) << *append;
    EXPECT_DOUBLE_EQ(JsonValue::Parse(*append)->NumberOr("total_rows", 0), 36);
    auto manifest = ReadFileToString(state_dir_ + "/stores/s-1/manifest.json");
    ASSERT_TRUE(manifest.ok());
    EXPECT_NE(manifest->find("\"total_rows\":36"), std::string::npos)
        << *manifest;
    server.Shutdown();
  }
}

TEST_F(ChunkedSessionTest, CorruptStoreIsDroppedOnRestart) {
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(IsOk(Request(
        server.port(),
        R"({"op":"open","schema":["a","b","c"],"storage":"chunked"})")));
    ASSERT_TRUE(IsOk(Request(server.port(),
                             R"({"op":"append","session":"s-1","rows":)" +
                                 RowsJson(24, 5) + "}")));
    server.Shutdown();
  }
  // Flip a byte inside the chunk payload.
  const std::string victim = state_dir_ + "/stores/s-1/chunk-000000.bin";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(40);
    f.write(&byte, 1);
  }
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.sessions_recovered(), 0u);
    EXPECT_EQ(server.sessions_recovery_failed(), 1u);
    // Consistent-or-absent: session gone, snapshot gone, store dir gone.
    auto discover =
        Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(discover.ok());
    EXPECT_FALSE(JsonValue::Parse(*discover)->BoolOr("ok", true)) << *discover;
    EXPECT_FALSE(ReadFileToString(state_dir_ + "/sessions/s-1.json").ok());
    EXPECT_FALSE(ReadFileToString(victim).ok());
    server.Shutdown();
  }
}

}  // namespace
}  // namespace fdx
