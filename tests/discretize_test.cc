#include <gtest/gtest.h>

#include <set>

#include "core/fdx.h"
#include "data/discretize.h"
#include "util/rng.h"

namespace fdx {
namespace {

Table ContinuousTable(size_t n, uint64_t seed) {
  Table t{Schema({"x", "y", "label"})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0.0, 100.0);
    t.AppendRow({Value(x), Value(2.0 * x + rng.NextGaussian() * 0.01),
                 Value(std::string(x < 50.0 ? "low" : "high"))});
  }
  return t;
}

size_t DistinctCount(const Table& t, size_t col) {
  std::set<std::string> seen;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (!t.cell(r, col).is_null()) seen.insert(t.cell(r, col).ToString());
  }
  return seen.size();
}

TEST(DiscretizeTest, ReducesCardinalityToBinCount) {
  Table t = ContinuousTable(500, 1);
  DiscretizeOptions options;
  options.bins = 8;
  auto binned = DiscretizeNumericColumns(t, options);
  ASSERT_TRUE(binned.ok());
  EXPECT_LE(DistinctCount(*binned, 0), 8u);
  EXPECT_LE(DistinctCount(*binned, 1), 8u);
  // String column untouched.
  EXPECT_EQ(DistinctCount(*binned, 2), 2u);
}

TEST(DiscretizeTest, EqualFrequencyBalancesBins) {
  Table t = ContinuousTable(800, 2);
  DiscretizeOptions options;
  options.kind = BinningKind::kEqualFrequency;
  options.bins = 4;
  auto binned = DiscretizeNumericColumns(t, options);
  ASSERT_TRUE(binned.ok());
  std::map<int64_t, size_t> counts;
  for (size_t r = 0; r < binned->num_rows(); ++r) {
    ++counts[binned->cell(r, 0).AsInt()];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [bin, count] : counts) {
    EXPECT_GT(count, 120u);  // ~200 expected per bin
    EXPECT_LT(count, 280u);
  }
}

TEST(DiscretizeTest, SmallDomainsPassThrough) {
  Table t{Schema({"flag"})};
  for (int i = 0; i < 100; ++i) t.AppendRow({Value(int64_t{i % 3})});
  auto binned = DiscretizeNumericColumns(t, {});
  ASSERT_TRUE(binned.ok());
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_TRUE(binned->cell(r, 0).EqualsStrict(t.cell(r, 0)));
  }
}

TEST(DiscretizeTest, NullsStayNull) {
  Table t{Schema({"x"})};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({i % 10 == 0 ? Value::Null() : Value(rng.NextDouble())});
  }
  auto binned = DiscretizeNumericColumns(t, {});
  ASSERT_TRUE(binned.ok());
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(binned->cell(r, 0).is_null(), t.cell(r, 0).is_null());
  }
}

TEST(DiscretizeTest, RejectsBadBinCount) {
  EXPECT_FALSE(DiscretizeNumericColumns(Table{Schema({"x"})},
                                        {BinningKind::kEqualWidth, 1, 32})
                   .ok());
}

TEST(DiscretizeTest, EnablesFdDiscoveryOnContinuousData) {
  // y = 2x (continuous): useless to equality-based discovery raw, but
  // after quantile binning the bin of x determines the bin of y almost
  // everywhere, and FDX picks the dependency up.
  Table t = ContinuousTable(2000, 4);
  DiscretizeOptions options;
  options.bins = 12;
  auto binned = DiscretizeNumericColumns(t, options);
  ASSERT_TRUE(binned.ok());
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(*binned);
  ASSERT_TRUE(result.ok());
  bool found_xy = false;
  for (const auto& fd : result->fds) {
    const bool about_xy =
        (fd.rhs == 1 && fd.lhs == std::vector<size_t>{0}) ||
        (fd.rhs == 0 && fd.lhs == std::vector<size_t>{1});
    found_xy = found_xy || about_xy;
  }
  EXPECT_TRUE(found_xy) << FdSetToString(result->fds, binned->schema());
}

}  // namespace
}  // namespace fdx
