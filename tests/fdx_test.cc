#include <gtest/gtest.h>

#include "bn/networks.h"
#include "core/fdx.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace fdx {
namespace {

TEST(GenerateFdsTest, ReadsUpperTriangle) {
  // Permuted coordinates: positions 0,1,2 hold attributes 2,0,1.
  Matrix b(3, 3);
  b(0, 2) = 0.5;   // position 0 -> position 2: attribute 2 -> attribute 1
  b(1, 2) = 0.02;  // below both the absolute and relative cuts
  FdSet fds =
      GenerateFdsFromAutoregression(b, {2, 0, 1}, 0.1, 0.4, 0.08, 1e-8);
  ASSERT_EQ(fds.size(), 1u);
  EXPECT_EQ(fds[0].lhs, (std::vector<size_t>{2}));
  EXPECT_EQ(fds[0].rhs, 1u);
}

TEST(GenerateFdsTest, EmptyBelowThreshold) {
  Matrix b(4, 4);
  b(0, 1) = 1e-12;
  EXPECT_TRUE(
      GenerateFdsFromAutoregression(b, {0, 1, 2, 3}, 0.0, 0.4, 0.08, 1e-8)
          .empty());
}

TEST(GenerateFdsTest, RelativeRuleKeepsJointDeterminants) {
  // Three equal weights of 0.12 (a noisy 3-determinant FD) survive the
  // relative rule even though each is small in absolute terms.
  Matrix b(4, 4);
  b(0, 3) = 0.12;
  b(1, 3) = 0.12;
  b(2, 3) = 0.11;
  FdSet fds =
      GenerateFdsFromAutoregression(b, {0, 1, 2, 3}, 0.0, 0.4, 0.08, 1e-8);
  ASSERT_EQ(fds.size(), 1u);
  EXPECT_EQ(fds[0].lhs.size(), 3u);
}

TEST(GenerateFdsTest, NegativeWeightsNeverQualify) {
  Matrix b(3, 3);
  b(0, 2) = -0.9;
  b(1, 2) = -0.5;
  EXPECT_TRUE(
      GenerateFdsFromAutoregression(b, {0, 1, 2}, 0.0, 0.4, 0.08, 1e-8)
          .empty());
}

TEST(FdxTest, RecoversUnaryFdFromCleanData) {
  // y = f(x), 20 values; z independent.
  Table t{Schema({"x", "y", "z"})};
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(0, 19);
    t.AppendRow({Value(x), Value((x * 7 + 3) % 20), Value(rng.NextInt(0, 19))});
  }
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(t);
  ASSERT_TRUE(result.ok());
  FdSet truth = {FunctionalDependency({0}, 1)};
  FdScore score = ScoreFdsUndirected(result->fds, truth);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  EXPECT_GE(score.precision, 0.99);
}

TEST(FdxTest, NoFdsOnIndependentData) {
  Table t{Schema({"a", "b", "c", "d"})};
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9)),
                 Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9))});
  }
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty())
      << FdSetToString(result->fds, t.schema());
}

TEST(FdxTest, RobustToModerateNoise) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 10;
  config.noise_rate = 0.1;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.5) << FdSetToString(result->fds, ds->clean.schema());
}

TEST(FdxTest, ResultExposesArtifacts) {
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_attributes = 6;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->theta.rows(), 6u);
  EXPECT_EQ(result->autoregression.rows(), 6u);
  EXPECT_EQ(result->ordering.size(), 6u);
  EXPECT_EQ(result->transform_samples, 500u * 6u);
  EXPECT_GE(result->transform_seconds, 0.0);
  EXPECT_GE(result->learning_seconds, 0.0);
  // The autoregression matrix is strictly "upper" in permuted positions:
  // mapped back, entry (i, i) must be zero.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(result->autoregression(i, i), 0.0);
  }
}

TEST(FdxTest, AtMostOneFdPerDependentAttribute) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 12;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(result.ok());
  std::set<size_t> rhs_seen;
  for (const auto& fd : result->fds) {
    EXPECT_TRUE(rhs_seen.insert(fd.rhs).second)
        << "duplicate RHS " << fd.rhs;
  }
  EXPECT_LE(result->fds.size(), 12u);  // parsimony (paper §5.4)
}

TEST(FdxTest, HigherSparsityThresholdFindsFewerEdges) {
  BayesNet net = MakeAsiaNetwork();
  Rng rng(5);
  auto sample = net.Sample(5000, &rng);
  ASSERT_TRUE(sample.ok());
  size_t previous_edges = 1000;
  for (double tau : {0.05, 0.15, 0.3, 0.6}) {
    FdxOptions options;
    options.sparsity_threshold = tau;
    FdxDiscoverer discoverer(options);
    auto result = discoverer.Discover(*sample);
    ASSERT_TRUE(result.ok());
    const size_t edges = FdEdges(result->fds).size();
    EXPECT_LE(edges, previous_edges) << "tau " << tau;
    previous_edges = edges;
  }
}

class FdxOrderingTest : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(FdxOrderingTest, AllOrderingsRecoverAsiaStructure) {
  // Paper Table 9: FDX is not sensitive to the ordering method.
  BayesNet net = MakeAsiaNetwork();
  Rng rng(6);
  auto sample = net.Sample(10000, &rng);
  ASSERT_TRUE(sample.ok());
  FdxOptions options;
  options.ordering = GetParam();
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(*sample);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, net.GroundTruthFds());
  EXPECT_GT(score.f1, 0.6) << OrderingMethodName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderings, FdxOrderingTest,
    ::testing::Values(OrderingMethod::kNatural, OrderingMethod::kMinDegree,
                      OrderingMethod::kAmd, OrderingMethod::kColamd,
                      OrderingMethod::kMetis, OrderingMethod::kNesdis),
    [](const auto& info) { return OrderingMethodName(info.param); });

TEST(FdxTest, SequentialLassoEstimatorRecoversStructure) {
  // The neighborhood-selection engine must match graphical lasso on the
  // benchmark networks (it often edges it out on hub-heavy graphs).
  BayesNet net = MakeAsiaNetwork();
  Rng rng(77);
  auto sample = net.Sample(8000, &rng);
  ASSERT_TRUE(sample.ok());
  FdxOptions options;
  options.estimator = StructureEstimator::kSequentialLasso;
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(*sample);
  ASSERT_TRUE(result.ok());
  const FdScore score =
      ScoreFdsUndirected(result->fds, net.GroundTruthFds());
  EXPECT_GT(score.f1, 0.6);
  // The SEM-implied theta is still a valid symmetric matrix.
  EXPECT_TRUE(result->theta.IsSymmetric(1e-9));
}

TEST(FdxTest, SequentialLassoOnIndependentDataIsEmpty) {
  Table t{Schema({"a", "b", "c"})};
  Rng rng(78);
  for (int i = 0; i < 2000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9)),
                 Value(rng.NextInt(0, 9))});
  }
  FdxOptions options;
  options.estimator = StructureEstimator::kSequentialLasso;
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty())
      << FdSetToString(result->fds, t.schema());
}

TEST(FdxTest, UnnormalizedCovarianceWithRawScaleLambda) {
  // normalize_covariance=false reproduces the paper's raw-covariance
  // setup; lambda must then live on the covariance scale (Table 8's
  // {0..0.010} grid).
  Table t{Schema({"x", "y", "z"})};
  Rng rng(81);
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(0, 9);
    t.AppendRow({Value(x), Value((x * 3 + 2) % 10),
                 Value(rng.NextInt(0, 9))});
  }
  FdxOptions options;
  options.normalize_covariance = false;
  options.lambda = 0.002;
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(t);
  ASSERT_TRUE(result.ok());
  FdScore score =
      ScoreFdsUndirected(result->fds, {FunctionalDependency({0}, 1)});
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
}

TEST(FdxTest, PooledCovarianceEndToEnd) {
  SyntheticConfig config;
  config.num_tuples = 1200;
  config.num_attributes = 8;
  config.seed = 82;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxOptions options;
  options.transform.pooled_covariance = true;
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(ds->clean);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.6)
      << FdSetToString(result->fds, ds->clean.schema());
}

TEST(FdxTest, DiscoverFromCovarianceBypassesTransform) {
  // Identity covariance: no dependencies, no FDs.
  FdxDiscoverer discoverer;
  auto result = discoverer.DiscoverFromCovariance(Matrix::Identity(5));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
}

TEST(FdxTest, HandlesMissingValues) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_attributes = 8;
  config.seed = 7;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  Rng rng(8);
  Table holed = PunchHoles(ds->clean, 0.05, &rng);
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(holed);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.4);
}

// --- Degenerate inputs: Discover must return a clean Status or an empty
// result with diagnostics, never crash (paper tables only ever show
// well-formed relations; real data is not so polite). ---

TEST(FdxDegenerateTest, NoColumnsIsInvalidArgument) {
  Table t{Schema(std::vector<std::string>{})};
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FdxDegenerateTest, ZeroRowsReturnsEmptyWithDiagnostics) {
  Table t{Schema({"a", "b", "c"})};
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
  EXPECT_EQ(result->theta.rows(), 3u);
  EXPECT_EQ(result->ordering, (std::vector<size_t>{0, 1, 2}));
  ASSERT_EQ(result->diagnostics.events.size(), 1u);
  EXPECT_EQ(result->diagnostics.events[0].action, "degenerate_table");
  EXPECT_FALSE(result->diagnostics.Degraded());
}

TEST(FdxDegenerateTest, SingleRowReturnsEmpty) {
  Table t{Schema({"a", "b"})};
  t.AppendRow({Value(int64_t{1}), Value(int64_t{2})});
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
  EXPECT_EQ(result->diagnostics.events[0].action, "degenerate_table");
}

TEST(FdxDegenerateTest, SingleColumnReturnsEmpty) {
  Table t{Schema({"only"})};
  for (int i = 0; i < 50; ++i) t.AppendRow({Value(int64_t{i})});
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
  EXPECT_EQ(result->ordering, (std::vector<size_t>{0}));
}

TEST(FdxDegenerateTest, AllConstantColumnsSucceedEmpty) {
  Table t{Schema({"a", "b", "c"})};
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  }
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->fds.empty());
  // All three equality indicators are constant: flagged, not fatal.
  ASSERT_FALSE(result->diagnostics.events.empty());
  EXPECT_EQ(result->diagnostics.events[0].action, "degenerate_attributes");
}

TEST(FdxDegenerateTest, AllNullColumnSurvivesFullPipeline) {
  // Nulls never compare equal, so an all-null column's indicator is
  // constant-zero; it must not poison the other columns' structure.
  Table t{Schema({"x", "y", "hole"})};
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(0, 19);
    t.AppendRow({Value(x), Value((x * 7 + 3) % 20), Value::Null()});
  }
  auto result = FdxDiscoverer().Discover(t);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& fd : result->fds) {
    EXPECT_NE(fd.rhs, 2u);
    for (size_t lhs : fd.lhs) EXPECT_NE(lhs, 2u);
  }
  FdScore score =
      ScoreFdsUndirected(result->fds, {FunctionalDependency({0}, 1)});
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
}

TEST(FdxTest, TransformCapStillRecoversStructure) {
  SyntheticConfig config;
  config.num_tuples = 5000;
  config.num_attributes = 8;
  config.seed = 9;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxOptions options;
  options.transform.max_pairs_per_attribute = 1000;
  FdxDiscoverer discoverer(options);
  auto result = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.4);
}

}  // namespace
}  // namespace fdx
