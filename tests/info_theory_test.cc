#include <gtest/gtest.h>

#include <cmath>

#include "baselines/info_theory.h"
#include "data/csv.h"

namespace fdx {
namespace {

EncodedTable EncodeCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return EncodedTable::Encode(*t);
}

TEST(EntropyTest, UniformBinaryIsLog2) {
  EncodedTable e = EncodeCsv("x\n0\n1\n0\n1\n");
  EXPECT_NEAR(Entropy(e, AttributeSet::Single(0)), std::log(2.0), 1e-12);
}

TEST(EntropyTest, ConstantIsZero) {
  EncodedTable e = EncodeCsv("x\nk\nk\nk\n");
  EXPECT_DOUBLE_EQ(Entropy(e, AttributeSet::Single(0)), 0.0);
}

TEST(EntropyTest, SkewedDistribution) {
  // P = (3/4, 1/4).
  EncodedTable e = EncodeCsv("x\na\na\na\nb\n");
  const double expected =
      -(0.75 * std::log(0.75) + 0.25 * std::log(0.25));
  EXPECT_NEAR(Entropy(e, AttributeSet::Single(0)), expected, 1e-12);
}

TEST(EntropyTest, JointOverTwoColumns) {
  // Four distinct (x, y) combinations, uniform -> log 4.
  EncodedTable e = EncodeCsv("x,y\n0,0\n0,1\n1,0\n1,1\n");
  EXPECT_NEAR(Entropy(e, AttributeSet::FromIndices({0, 1})),
              std::log(4.0), 1e-12);
}

TEST(GroupIdsTest, DenseAndStable) {
  EncodedTable e = EncodeCsv("x,y\na,0\nb,0\na,0\nb,1\n");
  size_t groups = 0;
  auto ids = GroupIds(e, AttributeSet::FromIndices({0, 1}), &groups);
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(ids[1], ids[3]);
}

TEST(MutualInformationTest, IndependentIsNearZero) {
  // x and y fully crossed -> empirical MI exactly 0.
  EncodedTable e = EncodeCsv("x,y\n0,0\n0,1\n1,0\n1,1\n");
  EXPECT_NEAR(MutualInformation(e, AttributeSet::Single(0), 1), 0.0, 1e-12);
}

TEST(MutualInformationTest, DeterministicEqualsEntropy) {
  // y = x: I(X; Y) = H(Y).
  EncodedTable e = EncodeCsv("x,y\n0,a\n1,b\n0,a\n1,b\n2,c\n2,c\n");
  const double h_y = Entropy(e, AttributeSet::Single(1));
  EXPECT_NEAR(MutualInformation(e, AttributeSet::Single(0), 1), h_y, 1e-12);
}

TEST(MutualInformationTest, NonNegativeAndBounded) {
  EncodedTable e = EncodeCsv("x,y\n0,a\n1,a\n0,b\n1,b\n2,a\n0,a\n");
  const double mi = MutualInformation(e, AttributeSet::Single(0), 1);
  EXPECT_GE(mi, -1e-12);
  EXPECT_LE(mi, Entropy(e, AttributeSet::Single(1)) + 1e-12);
}

TEST(PermutationBiasTest, GrowsWithLhsCardinality) {
  // The chance information a determinant extracts grows with its
  // cardinality — RFI's entire reason to exist (§2.1 of the paper).
  Table t{Schema({"small", "big", "y"})};
  Rng data_rng(1);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({Value(data_rng.NextInt(0, 1)),
                 Value(data_rng.NextInt(0, 49)),
                 Value(data_rng.NextInt(0, 3))});
  }
  EncodedTable e = EncodedTable::Encode(t);
  Rng rng(2);
  const double bias_small =
      PermutationBias(e, AttributeSet::Single(0), 2, 5, &rng);
  const double bias_big =
      PermutationBias(e, AttributeSet::Single(1), 2, 5, &rng);
  EXPECT_GE(bias_small, 0.0);
  EXPECT_GT(bias_big, bias_small);
}

TEST(PermutationBiasTest, ZeroPermutationsIsZero) {
  EncodedTable e = EncodeCsv("x,y\n0,a\n1,b\n");
  Rng rng(3);
  EXPECT_DOUBLE_EQ(PermutationBias(e, AttributeSet::Single(0), 1, 0, &rng),
                   0.0);
}

TEST(ExactPermutationBiasTest, MatchesMonteCarloEstimate) {
  Table t{Schema({"x", "y"})};
  Rng data_rng(7);
  for (int i = 0; i < 300; ++i) {
    t.AppendRow({Value(data_rng.NextInt(0, 5)),
                 Value(data_rng.NextInt(0, 3))});
  }
  EncodedTable e = EncodedTable::Encode(t);
  const double exact = ExactPermutationBias(e, AttributeSet::Single(0), 1);
  Rng rng(8);
  const double monte_carlo =
      PermutationBias(e, AttributeSet::Single(0), 1, 200, &rng);
  EXPECT_GT(exact, 0.0);
  EXPECT_NEAR(exact, monte_carlo, 0.25 * exact + 1e-3);
}

TEST(ExactPermutationBiasTest, GrowsWithDeterminantCardinality) {
  Table t{Schema({"small", "big", "y"})};
  Rng rng(9);
  for (int i = 0; i < 250; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 1)), Value(rng.NextInt(0, 49)),
                 Value(rng.NextInt(0, 3))});
  }
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_GT(ExactPermutationBias(e, AttributeSet::Single(1), 2),
            ExactPermutationBias(e, AttributeSet::Single(0), 2));
}

TEST(ExactPermutationBiasTest, ZeroForConstantTarget) {
  EncodedTable e = EncodeCsv("x,y\n0,k\n1,k\n2,k\n3,k\n");
  EXPECT_NEAR(ExactPermutationBias(e, AttributeSet::Single(0), 1), 0.0,
              1e-12);
}

TEST(EntropyOfGroupsTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(EntropyOfGroups({}, 0), 0.0);
}

}  // namespace
}  // namespace fdx
