#include <gtest/gtest.h>

#include "eval/afd_ranking.h"
#include "util/rng.h"

namespace fdx {
namespace {

/// y = f(x) exactly; z correlated with x at rho; noise independent;
/// id unique.
Table RankingFixture(size_t n, double rho, uint64_t seed) {
  Table t{Schema({"x", "y", "z", "noise", "id"})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = rng.NextInt(0, 7);
    const int64_t z = rng.NextBernoulli(rho) ? x : rng.NextInt(0, 7);
    t.AppendRow({Value(x), Value((x * 3 + 5) % 8), Value(z),
                 Value(rng.NextInt(0, 7)), Value(static_cast<int64_t>(i))});
  }
  return t;
}

const AfdCandidate* Find(const std::vector<AfdCandidate>& ranked, size_t x,
                         size_t y) {
  for (const auto& c : ranked) {
    if (c.fd.lhs == std::vector<size_t>{x} && c.fd.rhs == y) return &c;
  }
  return nullptr;
}

TEST(AfdRankingTest, ExactFdRanksFirst) {
  Table t = RankingFixture(1500, 0.5, 1);
  auto ranked = RankUnaryAfds(t);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->empty());
  const AfdCandidate& top = (*ranked)[0];
  // x -> y or y -> x (a bijection) must win.
  const bool top_is_xy =
      (top.fd.lhs == std::vector<size_t>{0} && top.fd.rhs == 1) ||
      (top.fd.lhs == std::vector<size_t>{1} && top.fd.rhs == 0);
  EXPECT_TRUE(top_is_xy) << top.fd.ToString(t.schema());
  EXPECT_NEAR(top.g3_error, 0.0, 1e-12);
  EXPECT_NEAR(top.fraction_of_information, 1.0, 1e-9);
  EXPECT_GT(top.reliable_fraction, 0.9);
  EXPECT_NEAR(top.strength, 1.0, 1e-12);
}

TEST(AfdRankingTest, CorrelationRanksBetweenFdAndNoise) {
  Table t = RankingFixture(1500, 0.7, 2);
  auto ranked = RankUnaryAfds(t);
  ASSERT_TRUE(ranked.ok());
  const AfdCandidate* exact = Find(*ranked, 0, 1);
  const AfdCandidate* correlated = Find(*ranked, 0, 2);
  ASSERT_NE(exact, nullptr);
  ASSERT_NE(correlated, nullptr);
  EXPECT_GT(exact->reliable_fraction, correlated->reliable_fraction);
  EXPECT_GT(correlated->reliable_fraction, 0.1);
  const AfdCandidate* noise = Find(*ranked, 0, 3);
  if (noise != nullptr) {
    EXPECT_LT(noise->reliable_fraction,
              correlated->reliable_fraction);
  }
}

TEST(AfdRankingTest, SoftKeysExcludedAsDeterminants) {
  Table t = RankingFixture(800, 0.5, 3);
  auto ranked = RankUnaryAfds(t);
  ASSERT_TRUE(ranked.ok());
  for (const auto& candidate : *ranked) {
    EXPECT_NE(candidate.fd.lhs, std::vector<size_t>{4})  // the id column
        << candidate.fd.ToString(t.schema());
  }
}

TEST(AfdRankingTest, MinScoreFilters) {
  Table t = RankingFixture(800, 0.3, 4);
  AfdRankingOptions options;
  options.min_reliable_fraction = 0.95;
  auto ranked = RankUnaryAfds(t, options);
  ASSERT_TRUE(ranked.ok());
  for (const auto& candidate : *ranked) {
    EXPECT_GE(candidate.reliable_fraction, 0.95);
  }
}

TEST(AfdRankingTest, SortedByReliableFraction) {
  Table t = RankingFixture(800, 0.6, 5);
  auto ranked = RankUnaryAfds(t);
  ASSERT_TRUE(ranked.ok());
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].reliable_fraction,
              (*ranked)[i].reliable_fraction);
  }
}

TEST(AfdRankingTest, RejectsDegenerateInput) {
  EXPECT_FALSE(RankUnaryAfds(Table{Schema({"only"})}).ok());
}

}  // namespace
}  // namespace fdx
