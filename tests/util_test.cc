#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fdx {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::IOError("").code(),         Status::NumericalError("").code(),
      Status::Timeout("").code(),         Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FDX_ASSIGN_OR_RETURN(int h, Half(x));
  FDX_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::string text = "alpha,beta,gamma";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \n "), "");
}

TEST(StringUtilTest, IsIntegerAndIsDouble) {
  EXPECT_TRUE(IsInteger("42"));
  EXPECT_TRUE(IsInteger("-7"));
  EXPECT_FALSE(IsInteger("4.2"));
  EXPECT_FALSE(IsInteger("x"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_TRUE(IsDouble("4.2"));
  EXPECT_TRUE(IsDouble("-1e3"));
  EXPECT_FALSE(IsDouble("4.2x"));
  EXPECT_FALSE(IsDouble(""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(1000), b.NextUint64(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_difference = false;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64(1 << 30) != b.NextUint64(1 << 30)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RngTest, NextIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextDiscrete(weights), 1u);
  }
  // Statistical sanity: heavily skewed draw.
  weights = {9.0, 1.0};
  int zeros = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDiscrete(weights) == 0) ++zeros;
  }
  EXPECT_GT(zeros, 1600);
  EXPECT_LT(zeros, 1990);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(StopwatchTest, Monotone) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(w.ElapsedMillis(), w.ElapsedSeconds() * 1e3, 5.0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_TRUE(d.Expired());
}

}  // namespace
}  // namespace fdx
