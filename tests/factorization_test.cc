#include <gtest/gtest.h>

#include <cmath>

#include "linalg/factorization.h"
#include "util/rng.h"

namespace fdx {
namespace {

/// Random symmetric positive definite matrix A = M M^T + n I.
Matrix RandomSpd(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = rng.NextGaussian();
  }
  Matrix a = m.Multiply(m.Transpose());
  for (size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskyTest, ReconstructsInput) {
  const Matrix a = RandomSpd(6, 1);
  auto result = CholeskyFactor(a);
  ASSERT_TRUE(result.ok());
  const Matrix& l = result->l;
  EXPECT_LT(l.Multiply(l.Transpose()).Subtract(a).MaxAbs(), 1e-8);
  // Lower triangular with positive diagonal.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_GT(l(i, i), 0.0);
    for (size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(LdltTest, ReconstructsInput) {
  const Matrix a = RandomSpd(5, 2);
  auto result = LdltFactor(a);
  ASSERT_TRUE(result.ok());
  const Matrix& l = result->l;
  Matrix ld(5, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) ld(i, j) = l(i, j) * result->d[j];
  }
  EXPECT_LT(ld.Multiply(l.Transpose()).Subtract(a).MaxAbs(), 1e-8);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(l(i, i), 1.0);
    EXPECT_GT(result->d[i], 0.0);
  }
}

TEST(UdutTest, ReconstructsInput) {
  const Matrix a = RandomSpd(7, 3);
  auto result = UdutFactor(a);
  ASSERT_TRUE(result.ok());
  const Matrix& u = result->u;
  // Unit upper triangular.
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(u(i, i), 1.0);
    for (size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(u(i, j), 0.0);
    EXPECT_GT(result->d[i], 0.0);
  }
  Matrix ud(7, 7);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 7; ++j) ud(i, j) = u(i, j) * result->d[j];
  }
  EXPECT_LT(ud.Multiply(u.Transpose()).Subtract(a).MaxAbs(), 1e-8);
}

TEST(UdutTest, DiagonalInputGivesIdentityU) {
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 3.0;
  a(2, 2) = 4.0;
  auto result = UdutFactor(a);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->u.Subtract(Matrix::Identity(3)).MaxAbs(), 1e-12);
  EXPECT_DOUBLE_EQ(result->d[0], 2.0);
  EXPECT_DOUBLE_EQ(result->d[2], 4.0);
}

TEST(UdutTest, MatchesSemStructure) {
  // Build Theta = (I - B) (I - B)^T with B strictly upper; UDUT must
  // recover U = I - B exactly (Omega = I). This is the algebraic heart
  // of FDX's Algorithm 1.
  const size_t n = 4;
  Matrix b(n, n);
  b(0, 2) = 0.5;
  b(1, 2) = 0.5;
  b(2, 3) = 1.0;
  Matrix i_minus_b = Matrix::Identity(n).Subtract(b);
  Matrix theta = i_minus_b.Multiply(i_minus_b.Transpose());
  auto result = UdutFactor(theta);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->u.Subtract(i_minus_b).MaxAbs(), 1e-10);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(result->d[i], 1.0, 1e-10);
}

TEST(UdutTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});
  EXPECT_FALSE(UdutFactor(a).ok());
}

TEST(UdutTest, IsReversedLdlt) {
  // U D U^T of A must equal the index-reversed L D L^T of the
  // index-reversed A — the two factorizations are mirror images.
  const size_t n = 6;
  const Matrix a = RandomSpd(n, 9);
  std::vector<size_t> reversed(n);
  for (size_t i = 0; i < n; ++i) reversed[i] = n - 1 - i;
  const Matrix a_reversed = a.PermuteSymmetric(reversed);
  auto ldlt = LdltFactor(a_reversed);
  auto udut = UdutFactor(a);
  ASSERT_TRUE(ldlt.ok());
  ASSERT_TRUE(udut.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(udut->d[i], ldlt->d[n - 1 - i], 1e-9);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(udut->u(i, j), ldlt->l(n - 1 - i, n - 1 - j), 1e-9)
          << i << "," << j;
    }
  }
}

TEST(TriangularSolveTest, ForwardAndBackward) {
  Matrix l = Matrix::FromRows({{2, 0}, {1, 3}});
  Vector y = SolveLowerTriangular(l, {4, 10});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], (10.0 - 2.0) / 3.0);
  Matrix u = l.Transpose();
  Vector x = SolveUpperTriangular(u, {4, 9});
  EXPECT_DOUBLE_EQ(x[1], 3.0);
  EXPECT_DOUBLE_EQ(x[0], (4.0 - 1.0 * 3.0) / 2.0);
}

TEST(SolveSpdTest, SolvesLinearSystem) {
  const Matrix a = RandomSpd(8, 4);
  Rng rng(5);
  Vector x_true(8);
  for (double& v : x_true) v = rng.NextGaussian();
  const Vector b = a.MultiplyVector(x_true);
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(InverseSpdTest, ProducesInverse) {
  const Matrix a = RandomSpd(5, 6);
  auto inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(a.Multiply(*inv).Subtract(Matrix::Identity(5)).MaxAbs(), 1e-8);
}

TEST(LogDetSpdTest, MatchesKnownValue) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  auto logdet = LogDetSpd(a);
  ASSERT_TRUE(logdet.ok());
  EXPECT_NEAR(*logdet, std::log(36.0), 1e-12);
}

/// Property sweep: reconstruction holds across sizes and seeds.
class FactorizationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FactorizationPropertyTest, AllFactorizationsReconstruct) {
  const size_t n = static_cast<size_t>(std::get<0>(GetParam()));
  const uint64_t seed = static_cast<uint64_t>(std::get<1>(GetParam()));
  const Matrix a = RandomSpd(n, seed);

  auto chol = CholeskyFactor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_LT(chol->l.Multiply(chol->l.Transpose()).Subtract(a).MaxAbs(),
            1e-7 * a.MaxAbs());

  auto udut = UdutFactor(a);
  ASSERT_TRUE(udut.ok());
  Matrix ud(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) ud(i, j) = udut->u(i, j) * udut->d[j];
  }
  EXPECT_LT(ud.Multiply(udut->u.Transpose()).Subtract(a).MaxAbs(),
            1e-7 * a.MaxAbs());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FactorizationPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 10, 20, 40),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace fdx
