#include <gtest/gtest.h>

#include <cmath>

#include "linalg/factorization.h"
#include "linalg/glasso.h"
#include "linalg/stats.h"
#include "util/rng.h"

namespace fdx {
namespace {

size_t OffDiagonalNonzeros(const Matrix& theta, double tol = 1e-8) {
  size_t count = 0;
  for (size_t i = 0; i < theta.rows(); ++i) {
    for (size_t j = i + 1; j < theta.cols(); ++j) {
      if (std::fabs(theta(i, j)) > tol) ++count;
    }
  }
  return count;
}

TEST(GlassoTest, IndependentVariablesGiveDiagonalTheta) {
  Rng rng(1);
  Matrix samples(2000, 5);
  for (size_t i = 0; i < 2000; ++i) {
    for (size_t j = 0; j < 5; ++j) samples(i, j) = rng.NextGaussian();
  }
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  GlassoOptions options;
  options.lambda = 0.1;
  auto result = GraphicalLasso(*cov, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(OffDiagonalNonzeros(result->theta), 0u);
}

TEST(GlassoTest, DetectsChainStructure) {
  // x0 -> x1 -> x2 chain: theta should couple (0,1) and (1,2) but have
  // a (near) zero (0,2) entry — the conditional independence.
  Rng rng(2);
  Matrix samples(5000, 3);
  for (size_t i = 0; i < 5000; ++i) {
    const double x0 = rng.NextGaussian();
    const double x1 = 0.5 * x0 + 0.87 * rng.NextGaussian();
    const double x2 = 0.5 * x1 + 0.87 * rng.NextGaussian();
    samples(i, 0) = x0;
    samples(i, 1) = x1;
    samples(i, 2) = x2;
  }
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  GlassoOptions options;
  options.lambda = 0.12;
  auto result = GraphicalLasso(*cov, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(std::fabs(result->theta(0, 1)), 0.1);
  EXPECT_GT(std::fabs(result->theta(1, 2)), 0.1);
  // The chain's only conditional independence: the (0,2) coupling must
  // be (near-)eliminated. Exact zero is not guaranteed because the two
  // column subproblems can disagree and the symmetrization averages.
  EXPECT_LT(std::fabs(result->theta(0, 2)),
            0.05 * std::fabs(result->theta(0, 1)));
}

TEST(GlassoTest, SparsityMonotoneInLambda) {
  Rng rng(3);
  Matrix samples(500, 8);
  for (size_t i = 0; i < 500; ++i) {
    Vector z(3);
    for (double& v : z) v = rng.NextGaussian();
    for (size_t j = 0; j < 8; ++j) {
      samples(i, j) = z[j % 3] + 0.7 * rng.NextGaussian();
    }
  }
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  size_t previous = 100;
  for (double lambda : {0.01, 0.05, 0.2, 0.6}) {
    GlassoOptions options;
    options.lambda = lambda;
    auto result = GraphicalLasso(*cov, options);
    ASSERT_TRUE(result.ok());
    const size_t nonzeros = OffDiagonalNonzeros(result->theta);
    EXPECT_LE(nonzeros, previous) << "lambda " << lambda;
    previous = nonzeros;
  }
}

TEST(GlassoTest, ThetaIsSymmetricPositiveDefinite) {
  Rng rng(4);
  Matrix samples(300, 6);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 6; ++j) samples(i, j) = rng.NextGaussian();
  }
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  auto result = GraphicalLasso(*cov, GlassoOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->theta.IsSymmetric(1e-9));
  EXPECT_TRUE(CholeskyFactor(result->theta).ok());
}

TEST(GlassoTest, NearZeroLambdaApproximatesInverse) {
  // Well-conditioned covariance; lambda -> 0 should give Theta ~ S^{-1}.
  Matrix s = Matrix::FromRows({{2.0, 0.5}, {0.5, 1.0}});
  GlassoOptions options;
  options.lambda = 1e-7;
  options.diagonal_ridge = 0.0;
  options.max_iterations = 500;
  options.tolerance = 1e-10;
  auto result = GraphicalLasso(s, options);
  ASSERT_TRUE(result.ok());
  auto inverse = InverseSpd(s);
  ASSERT_TRUE(inverse.ok());
  EXPECT_LT(result->theta.Subtract(*inverse).MaxAbs(), 1e-3);
}

TEST(GlassoTest, HandlesConstantColumn) {
  // Zero-variance column must not break the solver.
  Matrix s(3, 3);
  s(0, 0) = 1.0;
  s(1, 1) = 0.0;  // constant variable
  s(2, 2) = 1.0;
  s(0, 2) = 0.4;
  s(2, 0) = 0.4;
  GlassoOptions options;
  options.lambda = 0.05;
  auto result = GraphicalLasso(s, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->theta(0, 1), 0.0);
  EXPECT_GT(result->theta(1, 1), 0.0);
}

TEST(GlassoTest, SingleVariable) {
  Matrix s(1, 1);
  s(0, 0) = 4.0;
  GlassoOptions options;
  options.lambda = 0.5;
  options.diagonal_ridge = 0.0;
  auto result = GraphicalLasso(s, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->theta(0, 0), 1.0 / 4.5, 1e-12);
}

TEST(GlassoTest, SolutionBeatsRidgeInverseOnPenalizedObjective) {
  // The glasso optimum minimizes
  //   f(Theta) = -log det(Theta) + tr(S Theta) + lambda * ||Theta||_1;
  // any other positive-definite candidate (here: the ridge inverse)
  // must score no better.
  Rng rng(9);
  Matrix samples(400, 5);
  for (size_t i = 0; i < 400; ++i) {
    Vector z(2);
    for (double& v : z) v = rng.NextGaussian();
    for (size_t j = 0; j < 5; ++j) {
      samples(i, j) = z[j % 2] + rng.NextGaussian();
    }
  }
  auto s = Covariance(samples);
  ASSERT_TRUE(s.ok());
  const double lambda = 0.2;
  GlassoOptions options;
  options.lambda = lambda;
  options.diagonal_ridge = 0.0;
  options.max_iterations = 200;
  options.tolerance = 1e-8;
  auto result = GraphicalLasso(*s, options);
  ASSERT_TRUE(result.ok());

  auto objective = [&](const Matrix& theta) {
    auto logdet = LogDetSpd(theta);
    EXPECT_TRUE(logdet.ok());
    double trace = 0.0, l1 = 0.0;
    for (size_t i = 0; i < 5; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        trace += (*s)(i, j) * theta(j, i);
        l1 += std::fabs(theta(i, j));
      }
    }
    return -*logdet + trace + lambda * l1;
  };
  Matrix ridged = *s;
  for (size_t i = 0; i < 5; ++i) ridged(i, i) += lambda;
  auto naive = InverseSpd(ridged);
  ASSERT_TRUE(naive.ok());
  EXPECT_LE(objective(result->theta), objective(*naive) + 1e-6);
}

TEST(GlassoTest, RejectsBadInput) {
  EXPECT_FALSE(GraphicalLasso(Matrix(), {}).ok());
  EXPECT_FALSE(GraphicalLasso(Matrix(2, 3), {}).ok());
  Matrix asym = Matrix::FromRows({{1.0, 0.5}, {-0.5, 1.0}});
  EXPECT_FALSE(GraphicalLasso(asym, {}).ok());
}

}  // namespace
}  // namespace fdx
