#include <gtest/gtest.h>

#include "data/value.h"

namespace fdx {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, ParseInfersTypes) {
  EXPECT_EQ(Value::Parse("42").type(), ValueType::kInt);
  EXPECT_EQ(Value::Parse("-3").AsInt(), -3);
  EXPECT_EQ(Value::Parse("4.5").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("hello").type(), ValueType::kString);
  EXPECT_TRUE(Value::Parse("").is_null());
  // Leading zeros / mixed content stay strings? "007" parses as int 7.
  EXPECT_EQ(Value::Parse("007").AsInt(), 7);
  EXPECT_EQ(Value::Parse("7x").type(), ValueType::kString);
}

TEST(ValueTest, NullNeverEqualsAnything) {
  EXPECT_FALSE(Value::Null().EqualsStrict(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsStrict(Value(int64_t{0})));
  EXPECT_FALSE(Value(std::string("")).EqualsStrict(Value::Null()));
}

TEST(ValueTest, StrictEquality) {
  EXPECT_TRUE(Value(int64_t{3}).EqualsStrict(Value(int64_t{3})));
  EXPECT_FALSE(Value(int64_t{3}).EqualsStrict(Value(int64_t{4})));
  EXPECT_TRUE(
      Value(std::string("a")).EqualsStrict(Value(std::string("a"))));
  EXPECT_FALSE(
      Value(std::string("a")).EqualsStrict(Value(std::string("b"))));
  // Cross numeric types compare by value.
  EXPECT_TRUE(Value(int64_t{3}).EqualsStrict(Value(3.0)));
  EXPECT_FALSE(Value(int64_t{3}).EqualsStrict(Value(3.5)));
  // String never equals numeric.
  EXPECT_FALSE(Value(std::string("3")).EqualsStrict(Value(int64_t{3})));
}

TEST(ValueTest, LessThanOrdersWithinType) {
  EXPECT_TRUE(Value(int64_t{1}).LessThan(Value(int64_t{2})));
  EXPECT_FALSE(Value(int64_t{2}).LessThan(Value(int64_t{1})));
  EXPECT_TRUE(Value(std::string("a")).LessThan(Value(std::string("b"))));
  // Nulls order before non-nulls (by type rank).
  EXPECT_TRUE(Value::Null().LessThan(Value(int64_t{0})));
  EXPECT_FALSE(Value::Null().LessThan(Value::Null()));
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(Value(int64_t{5}).ToNumeric(), 5.0);
  EXPECT_DOUBLE_EQ(Value(1.5).ToNumeric(), 1.5);
  EXPECT_DOUBLE_EQ(Value(std::string("x")).ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToNumeric(), 0.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

}  // namespace
}  // namespace fdx
