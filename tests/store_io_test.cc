// The fast out-of-core I/O layer: mmap-backed chunk reads (with the
// pread path as a bit-identical fallback), the `store.mmap` /
// `store.decompress` fault points, and the varint chunk codec. The
// contract under test: every io-mode x codec combination produces the
// same bytes, compressed stores fingerprint identically to raw ones,
// and every corruption mode fails loudly with kIOError.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "data/table.h"
#include "store/chunk_codec.h"
#include "store/chunked_table.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace fdx {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "fdx_store_io_" + tag + "_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  (void)RemoveDirectoryRecursive(dir);
  return dir;
}

/// Mixed-type rows with repeats, nulls, negative ints (zigzag corner)
/// and growing dictionaries, so varint deltas are both positive and
/// negative across chunks.
Table IoTable(size_t rows) {
  Table table{Schema({"a", "b", "c"})};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    row[0] = Value(static_cast<int64_t>(r % 29) - 14);
    row[1] = r % 13 == 0 ? Value::Null()
                         : Value("v" + std::to_string((r * 7) % 17));
    row[2] = Value(static_cast<double>(r % 5) * 0.5);
    table.AppendRow(std::move(row));
  }
  return table;
}

void AppendInChunks(const Table& table, size_t chunk_rows,
                    ChunkedTable* store) {
  for (size_t lo = 0; lo < table.num_rows(); lo += chunk_rows) {
    const size_t hi = std::min(table.num_rows(), lo + chunk_rows);
    Table batch{table.schema()};
    std::vector<Value> row(table.num_columns());
    for (size_t r = lo; r < hi; ++r) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row[c] = table.cell(r, c);
      }
      batch.AppendRow(row);
    }
    ASSERT_TRUE(store->AppendBatch(batch).ok());
  }
}

std::vector<std::vector<int32_t>> AllCodes(const ChunkedTable& store) {
  std::vector<std::vector<int32_t>> codes(store.num_columns());
  for (size_t c = 0; c < store.num_columns(); ++c) {
    EXPECT_TRUE(store.ReadColumnCodes(c, &codes[c]).ok());
  }
  return codes;
}

TEST(MmapFileTest, MapsReadsAndReleases) {
  const std::string dir = FreshDir("mmap");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/blob.bin";
  std::string contents;
  for (int i = 0; i < 10000; ++i) contents += static_cast<char>(i % 251);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());

  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value().mapped());
  ASSERT_EQ(file.value().size(), contents.size());
  EXPECT_EQ(std::string(file.value().data(), file.value().size()), contents);
  // Touched every byte above, so some pages must be resident; dropping
  // them is advisory but must never report more resident than the
  // page-rounded mapping.
  EXPECT_GT(file.value().ResidentBytes(), 0u);
  file.value().AdviseDontNeed(0, file.value().size());
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  EXPECT_LE(file.value().ResidentBytes(),
            (file.value().size() + page - 1) / page * page);

  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(MmapFileTest, EmptyFileAndMissingFile) {
  const std::string dir = FreshDir("mmap_edge");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string empty = dir + "/empty.bin";
  ASSERT_TRUE(WriteFileAtomic(empty, "").ok());
  auto mapped = MmapFile::Open(empty);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(mapped.value().mapped());
  EXPECT_EQ(mapped.value().size(), 0u);
  EXPECT_EQ(mapped.value().ResidentBytes(), 0u);

  EXPECT_FALSE(MmapFile::Open(dir + "/nope.bin").ok());
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreIoTest, EnvironmentOverridesDefaultIoMode) {
  ASSERT_EQ(::setenv("FDX_STORE_IO", "read", 1), 0);
  EXPECT_EQ(DefaultStoreIo(), StoreIo::kRead);
  auto store = ChunkedTable::Create(Schema({"a"}), "");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().io_mode(), StoreIo::kRead);

  ASSERT_EQ(::setenv("FDX_STORE_IO", "mmap", 1), 0);
  EXPECT_EQ(DefaultStoreIo(), StoreIo::kMmap);
  // Unrecognized values fall back to the default rather than failing.
  ASSERT_EQ(::setenv("FDX_STORE_IO", "warp-drive", 1), 0);
  EXPECT_EQ(DefaultStoreIo(), StoreIo::kMmap);
  ASSERT_EQ(::unsetenv("FDX_STORE_IO"), 0);
  EXPECT_EQ(DefaultStoreIo(), StoreIo::kMmap);
}

TEST(StoreIoTest, MmapAndReadPathsAreBitIdentical) {
  const std::string dir = FreshDir("modes");
  const Table table = IoTable(200);
  {
    auto store = ChunkedTable::Create(table.schema(), dir);
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 23, &store.value());
  }
  auto via_mmap = ChunkedTable::Open(dir);
  ASSERT_TRUE(via_mmap.ok());
  via_mmap.value().set_io_mode(StoreIo::kMmap);
  auto via_read = ChunkedTable::Open(dir);
  ASSERT_TRUE(via_read.ok());
  via_read.value().set_io_mode(StoreIo::kRead);

  EXPECT_EQ(AllCodes(via_mmap.value()), AllCodes(via_read.value()));
  EXPECT_EQ(via_mmap.value().mmap_fallbacks(), 0u);
  for (size_t chunk = 0; chunk < via_mmap.value().num_chunks(); ++chunk) {
    auto a = via_mmap.value().ReadChunkValues(chunk);
    auto b = via_read.value().ReadChunkValues(chunk);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
    for (size_t r = 0; r < a.value().num_rows(); ++r) {
      for (size_t c = 0; c < a.value().num_columns(); ++c) {
        EXPECT_TRUE(a.value().cell(r, c).is_null()
                        ? b.value().cell(r, c).is_null()
                        : a.value().cell(r, c).EqualsStrict(
                              b.value().cell(r, c)))
            << "chunk " << chunk << " row " << r << " col " << c;
      }
    }
  }
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreIoTest, MmapFaultFallsBackToReadPath) {
  for (const char* codec : {"", "varint"}) {
    const std::string dir =
        FreshDir(std::string("fallback_") + (codec[0] == '\0' ? "raw" : codec));
    const Table table = IoTable(90);
    {
      auto store = ChunkedTable::Create(table.schema(), dir, codec);
      ASSERT_TRUE(store.ok());
      AppendInChunks(table, 30, &store.value());
    }
    // Armed across open *and* the column reads: raw stores only create
    // per-chunk I/O state on the first column read, compressed ones
    // already during Open's fingerprint replay.
    ASSERT_TRUE(ArmFaults(std::string(kFaultStoreMmap)).ok());
    auto store = ChunkedTable::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().message();
    store.value().set_io_mode(StoreIo::kMmap);
    const EncodedTable encoded = EncodedTable::Encode(table);
    const auto codes = AllCodes(store.value());
    DisarmFaults();
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(codes[c], encoded.column_codes(c)) << "col " << c;
    }
    // Every chunk's map attempt failed; all of them fell back to pread
    // and the store still served identical bytes.
    EXPECT_EQ(store.value().mmap_fallbacks(), store.value().num_chunks());
    EXPECT_EQ(store.value().MappedResidentBytes(), 0u);
    ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
  }
}

TEST(StoreIoTest, VarintStoreFingerprintsMatchRawStore) {
  const std::string raw_dir = FreshDir("raw");
  const std::string var_dir = FreshDir("var");
  const Table table = IoTable(150);
  auto raw = ChunkedTable::Create(table.schema(), raw_dir);
  auto var = ChunkedTable::Create(table.schema(), var_dir, "varint");
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(var.ok());
  EXPECT_EQ(raw.value().codec(), "none");
  EXPECT_EQ(var.value().codec(), "varint");
  AppendInChunks(table, 31, &raw.value());
  AppendInChunks(table, 31, &var.value());

  // Fingerprints cover the uncompressed serialization, so the two
  // stores are fingerprint-identical even though their bytes differ.
  ASSERT_EQ(raw.value().num_chunks(), var.value().num_chunks());
  for (size_t i = 0; i < raw.value().num_chunks(); ++i) {
    EXPECT_EQ(raw.value().ChunkFingerprintHex(i),
              var.value().ChunkFingerprintHex(i))
        << "chunk " << i;
  }
  EXPECT_EQ(AllCodes(raw.value()), AllCodes(var.value()));

  // The codec is recorded in the manifest and survives reopen.
  auto manifest = ReadFileToString(var_dir + "/manifest.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_NE(manifest.value().find("\"varint\""), std::string::npos);
  auto reopened = ChunkedTable::Open(var_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().codec(), "varint");
  EXPECT_EQ(AllCodes(reopened.value()), AllCodes(raw.value()));

  ASSERT_TRUE(RemoveDirectoryRecursive(raw_dir).ok());
  ASSERT_TRUE(RemoveDirectoryRecursive(var_dir).ok());
}

TEST(StoreIoTest, CompressedRoundTripAtExtremeChunkSizes) {
  const Table table = IoTable(97);
  const EncodedTable encoded = EncodedTable::Encode(table);
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{65536}}) {
    const std::string dir = FreshDir("sz" + std::to_string(chunk_rows));
    auto store = ChunkedTable::Create(table.schema(), dir, "varint");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, chunk_rows, &store.value());
    auto reopened = ChunkedTable::Open(dir);
    ASSERT_TRUE(reopened.ok()) << chunk_rows << ": "
                               << reopened.status().message();
    const auto codes = AllCodes(reopened.value());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(codes[c], encoded.column_codes(c))
          << "chunk_rows " << chunk_rows << " col " << c;
    }
    ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
  }
}

TEST(StoreIoTest, UnknownCodecRejected) {
  auto store = ChunkedTable::Create(Schema({"a"}), "", "zstd");
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("unknown chunk codec"),
            std::string::npos);
}

TEST(StoreIoTest, DecompressFaultSurfacesLoudly) {
  const std::string dir = FreshDir("decomp_fault");
  const Table table = IoTable(60);
  {
    auto store = ChunkedTable::Create(table.schema(), dir, "varint");
    ASSERT_TRUE(store.ok());
    AppendInChunks(table, 30, &store.value());
  }
  auto store = ChunkedTable::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(ArmFaults(std::string(kFaultStoreDecompress) + ":1").ok());
  std::vector<int32_t> codes;
  const Status read = store.value().ReadColumnCodes(0, &codes);
  DisarmFaults();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kIOError);
  EXPECT_NE(read.message().find("decompression failed"), std::string::npos);
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreIoTest, TruncatedCompressedChunkRejected) {
  const std::string dir = FreshDir("truncated");
  {
    auto store = ChunkedTable::Create(IoTable(1).schema(), dir, "varint");
    ASSERT_TRUE(store.ok());
    AppendInChunks(IoTable(80), 80, &store.value());
  }
  const std::string victim = dir + "/chunk-000000.bin";
  auto original = ReadFileToString(victim);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(
      WriteFileAtomic(victim, original.value().substr(0, 40)).ok());
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIOError);
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreIoTest, CorruptCompressedChunkRejected) {
  for (StoreIo io : {StoreIo::kMmap, StoreIo::kRead}) {
    const std::string dir = FreshDir(io == StoreIo::kMmap ? "cor_m" : "cor_r");
    {
      auto store = ChunkedTable::Create(IoTable(1).schema(), dir, "varint");
      ASSERT_TRUE(store.ok());
      AppendInChunks(IoTable(80), 40, &store.value());
    }
    // Flip a byte inside the first column's compressed payload (past the
    // 32-byte header and the 3-entry size table).
    const std::string victim = dir + "/chunk-000000.bin";
    auto contents = ReadFileToString(victim);
    ASSERT_TRUE(contents.ok());
    ASSERT_GT(contents.value().size(), 70u);
    contents.value()[62] = static_cast<char>(contents.value()[62] ^ 0x5a);
    ASSERT_TRUE(WriteFileAtomic(victim, contents.value()).ok());
    ASSERT_EQ(::setenv("FDX_STORE_IO", io == StoreIo::kMmap ? "mmap" : "read",
                       1),
              0);
    auto reopened = ChunkedTable::Open(dir);
    ASSERT_EQ(::unsetenv("FDX_STORE_IO"), 0);
    // Either the varint decoder rejects the mangled stream or the
    // reconstructed payload fails fingerprint verification — both are
    // loud kIOError, never silently different data.
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kIOError);
    ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
  }
}

TEST(StoreIoTest, CorruptRawChunkRejectedInMmapMode) {
  // The PR 9 corruption test runs through pread; this is the same
  // contract through the mapped first-touch verification.
  const std::string dir = FreshDir("cor_raw_mmap");
  {
    auto store = ChunkedTable::Create(IoTable(1).schema(), dir);
    ASSERT_TRUE(store.ok());
    AppendInChunks(IoTable(60), 30, &store.value());
  }
  const std::string victim = dir + "/chunk-000000.bin";
  auto contents = ReadFileToString(victim);
  ASSERT_TRUE(contents.ok());
  contents.value()[40] = static_cast<char>(contents.value()[40] ^ 0x5a);
  ASSERT_TRUE(WriteFileAtomic(victim, contents.value()).ok());
  ASSERT_EQ(::setenv("FDX_STORE_IO", "mmap", 1), 0);
  auto reopened = ChunkedTable::Open(dir);
  ASSERT_EQ(::unsetenv("FDX_STORE_IO"), 0);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIOError);
  EXPECT_NE(reopened.status().message().find("fingerprint mismatch"),
            std::string::npos);
  ASSERT_TRUE(RemoveDirectoryRecursive(dir).ok());
}

TEST(StoreIoTest, VarintCodecLookup) {
  auto none = FindChunkCodec("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), nullptr);
  auto blank = FindChunkCodec("");
  ASSERT_TRUE(blank.ok());
  EXPECT_EQ(blank.value(), nullptr);
  auto varint = FindChunkCodec("varint");
  ASSERT_TRUE(varint.ok());
  ASSERT_NE(varint.value(), nullptr);
  EXPECT_STREQ(varint.value()->name(), "varint");

  // Strict decode: truncated and over-long streams are kIOError.
  const std::vector<int32_t> codes = {0, 5, -3, 1 << 30, 0, 42};
  std::string payload;
  varint.value()->EncodeColumn(codes.data(), codes.size(), &payload);
  std::vector<int32_t> out(codes.size());
  ASSERT_TRUE(varint.value()
                  ->DecodeColumn(payload.data(), payload.size(), codes.size(),
                                 out.data())
                  .ok());
  EXPECT_EQ(out, codes);
  EXPECT_EQ(varint.value()
                ->DecodeColumn(payload.data(), payload.size() - 1,
                               codes.size(), out.data())
                .code(),
            StatusCode::kIOError);
  const std::string padded = payload + '\0';
  EXPECT_EQ(varint.value()
                ->DecodeColumn(padded.data(), padded.size(), codes.size(),
                               out.data())
                .code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace fdx
