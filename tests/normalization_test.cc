#include <gtest/gtest.h>

#include <algorithm>

#include "fd/normalization.h"

namespace fdx {
namespace {

// The textbook schema: R(City, State, Zip) with Zip -> City,State and
// City,State -> Zip.
FdSet CityStateZip() {
  return {FunctionalDependency({2}, 0), FunctionalDependency({2}, 1),
          FunctionalDependency({0, 1}, 2)};
}

TEST(ClosureTest, FixpointReachesTransitiveDependents) {
  // a -> b, b -> c: closure(a) = {a, b, c}.
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2)};
  const AttributeSet closure = Closure(AttributeSet::Single(0), fds);
  EXPECT_TRUE(closure.Contains(0));
  EXPECT_TRUE(closure.Contains(1));
  EXPECT_TRUE(closure.Contains(2));
  EXPECT_EQ(closure.Count(), 3u);
}

TEST(ClosureTest, CompositeLhsNeedsAllAttributes) {
  FdSet fds = {FunctionalDependency({0, 1}, 2)};
  EXPECT_FALSE(Closure(AttributeSet::Single(0), fds).Contains(2));
  EXPECT_TRUE(
      Closure(AttributeSet::FromIndices({0, 1}), fds).Contains(2));
}

TEST(ImpliesTest, ArmstrongAugmentationAndTransitivity) {
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2)};
  EXPECT_TRUE(Implies(fds, FunctionalDependency({0}, 2)));      // transitivity
  EXPECT_TRUE(Implies(fds, FunctionalDependency({0, 3}, 1)));   // augmentation
  EXPECT_FALSE(Implies(fds, FunctionalDependency({2}, 0)));     // no reverse
}

TEST(CandidateKeysTest, CityStateZipHasTwoKeys) {
  auto keys = CandidateKeys(3, CityStateZip());
  ASSERT_EQ(keys.size(), 2u);
  std::set<std::vector<size_t>> rendered;
  for (const auto& key : keys) rendered.insert(key.ToIndices());
  EXPECT_TRUE(rendered.count({0, 1}) > 0);  // {City, State}
  EXPECT_TRUE(rendered.count({2}) > 0);     // {Zip}
}

TEST(CandidateKeysTest, NoFdsMeansAllAttributesKey) {
  auto keys = CandidateKeys(4, {});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].Count(), 4u);
}

TEST(CandidateKeysTest, ChainHasSingleRootKey) {
  // a -> b -> c -> d: the only key is {a}.
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2),
               FunctionalDependency({2}, 3)};
  auto keys = CandidateKeys(4, fds);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].ToIndices(), (std::vector<size_t>{0}));
}

TEST(MinimalCoverTest, DropsExtraneousLhsAttributes) {
  // {a, b} -> c is implied by a -> c.
  FdSet fds = {FunctionalDependency({0}, 2),
               FunctionalDependency({0, 1}, 2)};
  FdSet cover = MinimalCover(fds, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], FunctionalDependency({0}, 2));
}

TEST(MinimalCoverTest, DropsRedundantFds) {
  // a -> c is implied by a -> b, b -> c.
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2),
               FunctionalDependency({0}, 2)};
  FdSet cover = MinimalCover(fds, 3);
  EXPECT_EQ(cover.size(), 2u);
  for (const auto& fd : fds) {
    EXPECT_TRUE(Implies(cover, fd)) << "cover lost information";
  }
}

TEST(MinimalCoverTest, PreservesEquivalence) {
  FdSet fds = CityStateZip();
  FdSet cover = MinimalCover(fds, 3);
  for (const auto& fd : fds) EXPECT_TRUE(Implies(cover, fd));
  for (const auto& fd : cover) EXPECT_TRUE(Implies(fds, fd));
}

TEST(BcnfTest, AlreadyNormalizedStaysWhole) {
  // Key -> everything: single relation, no split.
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({0}, 2)};
  auto decomposition = DecomposeBcnf(3, fds);
  ASSERT_EQ(decomposition.size(), 1u);
  EXPECT_EQ(decomposition[0].attributes.size(), 3u);
  EXPECT_TRUE(IsBcnf(decomposition, fds));
}

TEST(BcnfTest, TransitiveDependencySplits) {
  // R(a, b, c) with a -> b, b -> c: b -> c violates BCNF.
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({1}, 2)};
  auto decomposition = DecomposeBcnf(3, fds);
  EXPECT_GE(decomposition.size(), 2u);
  EXPECT_TRUE(IsBcnf(decomposition, fds));
  // Attribute coverage: every attribute appears somewhere.
  AttributeSet covered;
  for (const auto& relation : decomposition) {
    for (size_t a : relation.attributes) covered.Add(a);
  }
  EXPECT_EQ(covered.Count(), 3u);
}

TEST(BcnfTest, HospitalStyleSchemaDecomposes) {
  // 0:Provider 1:Name 2:City 3:County 4:Measure 5:MeasureName 6:Score
  FdSet fds = {
      FunctionalDependency({0}, 1), FunctionalDependency({0}, 2),
      FunctionalDependency({2}, 3), FunctionalDependency({4}, 5),
  };
  auto decomposition = DecomposeBcnf(7, fds);
  EXPECT_TRUE(IsBcnf(decomposition, fds));
  AttributeSet covered;
  for (const auto& relation : decomposition) {
    for (size_t a : relation.attributes) covered.Add(a);
  }
  EXPECT_EQ(covered.Count(), 7u);
  // The city->county fragment must exist on its own.
  bool has_city_county = false;
  for (const auto& relation : decomposition) {
    if (relation.attributes == std::vector<size_t>{2, 3}) {
      has_city_county = true;
    }
  }
  EXPECT_TRUE(has_city_county);
}

TEST(DecomposedRelationTest, RendersWithSchemaNames) {
  DecomposedRelation relation;
  relation.attributes = {0, 2};
  Schema schema({"City", "State", "Zip"});
  EXPECT_EQ(relation.ToString(schema, 1), "R1(City, Zip)");
}

}  // namespace
}  // namespace fdx
