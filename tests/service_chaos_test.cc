// Socket-level chaos tests: injected short reads/writes, EAGAIN storms,
// abrupt mid-pipeline disconnects, server-side deadlines, and load
// shedding — against both I/O modes. The invariant under every fault is
// the same: responses stay byte-correct, the server stays up, and
// overload turns into structured retry_after rejections, never torn
// frames or hangs.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/json_parser.h"
#include "service/server.h"
#include "util/fault_injection.h"
#include "util/socket.h"
#include "util/stopwatch.h"

namespace fdx {
namespace {

Result<std::string> Request(uint16_t port, const std::string& line) {
  FDX_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectLoopback(port));
  FDX_RETURN_IF_ERROR(sock.SendAll(line + "\n"));
  std::string response;
  FDX_RETURN_IF_ERROR(sock.ReadLine(&response));
  return response;
}

bool WaitFor(const std::function<bool()>& pred, double seconds = 10.0) {
  Stopwatch watch;
  while (!pred()) {
    if (watch.ElapsedSeconds() > seconds) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool IsOk(const std::string& response) {
  auto parsed = JsonValue::Parse(response);
  return parsed.ok() && parsed->BoolOr("ok", false);
}

std::string ErrorCode(const std::string& response) {
  auto parsed = JsonValue::Parse(response);
  if (!parsed.ok()) return "<unparseable>";
  const JsonValue* error = parsed->Find("error");
  return error == nullptr ? "<no error>" : error->StringOr("code", "");
}

std::string RowsJson(int rows, int modulus) {
  std::string json = "[";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) json += ",";
    const int a = i % modulus;
    json += "[" + std::to_string(a) + "," + std::to_string(2 * a) + "," +
            std::to_string(i % 3) + "]";
  }
  return json + "]";
}

class ServiceChaosTest : public ::testing::TestWithParam<IoMode> {
 protected:
  void TearDown() override { DisarmFaults(); }

  FdxServer& StartServer(ServerOptions options) {
    options.port = 0;
    options.io_mode = GetParam();
    servers_.push_back(std::make_unique<FdxServer>(std::move(options)));
    auto status = servers_.back()->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return *servers_.back();
  }

  std::vector<std::unique_ptr<FdxServer>> servers_;
};

// All socket I/O — both the server's and this test client's — degrades
// to one-byte reads and writes. Byte-at-a-time framing is the harshest
// fragmentation the kernel could ever deliver; every response must
// still parse and repeat discovers must stay byte-identical.
TEST_P(ServiceChaosTest, ShortReadsAndWritesKeepResponsesIntact) {
  FdxServer& server = StartServer(ServerOptions{});
  ASSERT_TRUE(ArmFaults(std::string(kFaultSocketReadShort) + "," +
                        kFaultSocketWriteShort)
                  .ok());

  auto open = Request(server.port(), R"({"op":"open","schema":["a","b","c"]})");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(IsOk(*open)) << *open;
  auto append = Request(server.port(),
                        R"({"op":"append","session":"s-1","rows":)" +
                            RowsJson(12, 4) + "}");
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(IsOk(*append)) << *append;

  auto first = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(IsOk(*first)) << *first;
  auto second = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second) << "fragmented I/O tore a response";
}

// Every third event-loop write reports EAGAIN without moving a byte.
// The loop must buffer, re-arm EPOLLOUT, and finish the flush — the
// client (blocking SendAll/ReadLine, which don't consult this fault
// point) just sees a slightly slower, still-correct response.
TEST_P(ServiceChaosTest, WriteEagainStormStillDelivers) {
  FdxServer& server = StartServer(ServerOptions{});
  ASSERT_TRUE(ArmFaults(std::string(kFaultSocketWriteEagain) + ":3%").ok());
  for (int i = 0; i < 4; ++i) {
    auto status = Request(server.port(), R"({"op":"status"})");
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_TRUE(IsOk(*status)) << *status;
  }
}

// A client that vanishes mid-pipeline — request sent, response pending —
// must not wedge the server, and in event-loop mode the abort is
// counted. The next client gets normal service.
TEST_P(ServiceChaosTest, MidPipelineDisconnectIsAbsorbed) {
  ServerOptions options;
  options.enable_debug_ops = true;
  FdxServer& server = StartServer(options);

  {
    auto sock = Socket::ConnectLoopback(server.port());
    ASSERT_TRUE(sock.ok());
    // Two pipelined sleeps plus a torn half-frame, then vanish.
    ASSERT_TRUE(sock
                    ->SendAll("{\"op\":\"sleep\",\"seconds\":0.2}\n"
                              "{\"op\":\"sleep\",\"seconds\":0.01}\n"
                              "{\"op\":\"stat")
                    .ok());
    // Let the daemon admit the work before the socket dies.
    ASSERT_TRUE(WaitFor([&] { return server.queue().active() >= 1; }));
  }  // socket closes here, with responses undelivered

  // The in-flight jobs finish; the server keeps serving.
  ASSERT_TRUE(WaitFor([&] { return server.queue().active() == 0; }));
  auto after = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(IsOk(*after)) << *after;
  if (GetParam() == IoMode::kEventLoop) {
    EXPECT_TRUE(WaitFor([&] { return server.aborted_connections() >= 1; }))
        << "event loop did not count the aborted connection";
  }
}

// conn.drop: the first socket operation that visits the point gets an
// injected disconnect (whichever side of the loopback wins the race).
// The contract is recovery: once the one-shot fault burns, the very
// next request succeeds.
TEST_P(ServiceChaosTest, InjectedConnDropRecovers) {
  FdxServer& server = StartServer(ServerOptions{});
  ASSERT_TRUE(ArmFaults(std::string(kFaultConnDrop) + ":1").ok());
  auto doomed = Request(server.port(), R"({"op":"status"})");
  (void)doomed;  // either side may have taken the drop; both are legal
  DisarmFaults();
  auto after = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(IsOk(*after)) << *after;
}

// Queue-depth load shedding: with the watermark at capacity/2 and the
// workers pinned by sleeps, new discover jobs get a structured
// Unavailable with a retry_after hint, and the shed counter moves.
TEST_P(ServiceChaosTest, QueueWatermarkShedsDiscover) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.workers = 1;
  options.queue_capacity = 8;
  options.shed_queue_watermark = 0.25;  // shed at 2 of 8
  options.shed_retry_after_seconds = 0.5;
  FdxServer& server = StartServer(options);

  // Pin the worker and fill the queue past the watermark. Sleeps are
  // exempt from shedding (only discover sheds), so these are admitted.
  std::vector<std::thread> sleepers;
  for (int i = 0; i < 3; ++i) {
    sleepers.emplace_back([&server] {
      (void)Request(server.port(), R"({"op":"sleep","seconds":0.5})");
    });
  }
  ASSERT_TRUE(WaitFor([&] { return server.queue().active() >= 2; }));

  auto shed = Request(server.port(),
                      R"({"op":"discover","table":{"schema":["x","y"],)"
                      R"("rows":[[1,2],[2,4],[3,6]]}})");
  ASSERT_TRUE(shed.ok());
  EXPECT_FALSE(IsOk(*shed));
  EXPECT_EQ(ErrorCode(*shed), "Unavailable") << *shed;
  auto parsed = JsonValue::Parse(*shed);
  EXPECT_TRUE(parsed->BoolOr("retry", false)) << *shed;
  EXPECT_DOUBLE_EQ(parsed->NumberOr("retry_after", 0.0), 0.5) << *shed;
  EXPECT_GE(server.shed_queue(), 1u);

  for (auto& t : sleepers) t.join();
  // Below the watermark again: the same discover is admitted.
  ASSERT_TRUE(WaitFor([&] { return server.queue().active() == 0; }));
  auto admitted = Request(server.port(),
                          R"({"op":"discover","table":{"schema":["x","y"],)"
                          R"("rows":[[1,2],[2,4],[3,6]]}})");
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(IsOk(*admitted)) << *admitted;
}

// Server-side deadlines: a request that waits in the queue past its
// deadline_seconds is answered with Timeout + retry_after instead of
// being executed. The deadline-shed counter moves; the work is skipped.
TEST_P(ServiceChaosTest, QueuedPastDeadlineIsShedNotExecuted) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.workers = 1;
  options.queue_capacity = 8;
  FdxServer& server = StartServer(options);

  // Pin the single worker long enough that the dated request expires.
  std::thread pin([&server] {
    (void)Request(server.port(), R"({"op":"sleep","seconds":0.6})");
  });
  ASSERT_TRUE(WaitFor([&] { return server.queue().active() >= 1; }));

  auto late = Request(
      server.port(),
      R"({"op":"sleep","seconds":0.01,"deadline_seconds":0.05})");
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(IsOk(*late));
  EXPECT_EQ(ErrorCode(*late), "Timeout") << *late;
  EXPECT_TRUE(JsonValue::Parse(*late)->BoolOr("retry", false)) << *late;
  EXPECT_GE(server.shed_deadline(), 1u);
  pin.join();

  // An un-dated request through the same path still executes.
  auto fine = Request(server.port(), R"({"op":"sleep","seconds":0.01})");
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(IsOk(*fine)) << *fine;
}

// A default server-side deadline from ServerOptions applies to requests
// that never sent deadline_seconds.
TEST_P(ServiceChaosTest, DefaultDeadlineAppliesWhenRequestOmitsIt) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.workers = 1;
  options.default_deadline_seconds = 0.05;
  FdxServer& server = StartServer(options);

  std::thread pin([&server] {
    // Explicit generous deadline so the pin itself is not shed.
    (void)Request(server.port(),
                  R"({"op":"sleep","seconds":0.6,"deadline_seconds":30})");
  });
  ASSERT_TRUE(WaitFor([&] { return server.queue().active() >= 1; }));
  auto late = Request(server.port(), R"({"op":"sleep","seconds":0.01})");
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(ErrorCode(*late), "Timeout") << *late;
  pin.join();
}

INSTANTIATE_TEST_SUITE_P(IoModes, ServiceChaosTest,
                         ::testing::Values(IoMode::kEventLoop,
                                           IoMode::kThreadPerConnection),
                         [](const ::testing::TestParamInfo<IoMode>& info) {
                           return info.param == IoMode::kEventLoop
                                      ? "epoll"
                                      : "threads";
                         });

}  // namespace
}  // namespace fdx
