#include <gtest/gtest.h>

#include <cmath>

#include "linalg/factorization.h"
#include "linalg/stats.h"
#include "util/rng.h"

namespace fdx {
namespace {

TEST(StatsTest, ColumnMeans) {
  Matrix samples = Matrix::FromRows({{1, 10}, {3, 20}, {5, 30}});
  Vector mu = ColumnMeans(samples);
  EXPECT_DOUBLE_EQ(mu[0], 3.0);
  EXPECT_DOUBLE_EQ(mu[1], 20.0);
}

TEST(StatsTest, CovarianceHandComputed) {
  // Two perfectly correlated columns.
  Matrix samples = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  const double var_x = 2.0 / 3.0;  // ML normalization
  EXPECT_NEAR((*cov)(0, 0), var_x, 1e-12);
  EXPECT_NEAR((*cov)(1, 1), 4.0 * var_x, 1e-12);
  EXPECT_NEAR((*cov)(0, 1), 2.0 * var_x, 1e-12);
  EXPECT_NEAR((*cov)(0, 1), (*cov)(1, 0), 1e-15);
}

TEST(StatsTest, CovarianceOfConstantsIsZero) {
  Matrix samples(10, 2, 3.0);
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  EXPECT_DOUBLE_EQ(cov->MaxAbs(), 0.0);
}

TEST(StatsTest, CovarianceRejectsEmpty) {
  EXPECT_FALSE(Covariance(Matrix(0, 3)).ok());
  EXPECT_FALSE(Covariance(BitMatrix(0, 3)).ok());
}

TEST(StatsTest, PackedCovarianceMatchesDense) {
  // Random 0/1 samples, sized to cross several uint64 words and the
  // parallel chunking boundary behavior.
  Rng rng(31);
  const size_t n = 1000;
  const size_t k = 9;
  BitMatrix packed(n, k);
  Matrix dense(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (rng.NextBernoulli(0.3)) {
        packed.Set(i, j);
        dense(i, j) = 1.0;
      }
    }
  }
  auto packed_cov = Covariance(packed);
  auto dense_cov = Covariance(dense);
  ASSERT_TRUE(packed_cov.ok() && dense_cov.ok());
  // Different summation (integer moments vs centered double products):
  // agreement to rounding error, not bitwise.
  EXPECT_LT(packed_cov->Subtract(*dense_cov).MaxAbs(), 1e-12);
  // Across thread counts the packed path is all-integer: bit-identical.
  for (size_t threads : {size_t{2}, size_t{8}}) {
    auto threaded = Covariance(packed, threads);
    ASSERT_TRUE(threaded.ok());
    EXPECT_EQ(threaded->Subtract(*packed_cov).MaxAbs(), 0.0);
  }
}

TEST(StatsTest, BitMatrixSetGetAndMoments) {
  BitMatrix bits(70, 2);  // spans two words per column
  bits.Set(0, 0);
  bits.Set(63, 0);
  bits.Set(64, 0);
  bits.Set(64, 1);
  bits.Set(69, 1);
  EXPECT_TRUE(bits.Get(63, 0));
  EXPECT_FALSE(bits.Get(62, 0));
  uint64_t counts[2] = {0, 0};
  uint64_t co[4] = {0, 0, 0, 0};
  bits.AccumulateMoments(counts, co);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(co[0 * 2 + 0], 3u);
  EXPECT_EQ(co[0 * 2 + 1], 1u);  // row 64 only
  EXPECT_EQ(co[1 * 2 + 1], 2u);

  Matrix dense(70, 2);
  bits.UnpackRows(0, 70, &dense);
  EXPECT_DOUBLE_EQ(dense(64, 1), 1.0);
  EXPECT_DOUBLE_EQ(dense(65, 1), 0.0);
}

TEST(StatsTest, CovarianceWithZeroMeanDiffersFromCentered) {
  Matrix samples = Matrix::FromRows({{1, 1}, {1, 1}, {3, 3}});
  auto centered = Covariance(samples);
  auto zero_mean = CovarianceWithMean(samples, {0.0, 0.0});
  ASSERT_TRUE(centered.ok());
  ASSERT_TRUE(zero_mean.ok());
  // Around zero the second moment dominates.
  EXPECT_GT((*zero_mean)(0, 0), (*centered)(0, 0));
}

TEST(StatsTest, CovariancePositiveSemidefinite) {
  Rng rng(3);
  Matrix samples(50, 6);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 6; ++j) samples(i, j) = rng.NextGaussian();
  }
  auto cov = Covariance(samples);
  ASSERT_TRUE(cov.ok());
  // PSD check: Cholesky of cov + tiny ridge succeeds.
  Matrix ridged = *cov;
  for (size_t i = 0; i < 6; ++i) ridged(i, i) += 1e-9;
  EXPECT_TRUE(CholeskyFactor(ridged).ok());
}

TEST(StatsTest, CorrelationDiagonalAndBounds) {
  Rng rng(4);
  Matrix samples(200, 4);
  for (size_t i = 0; i < 200; ++i) {
    const double shared = rng.NextGaussian();
    samples(i, 0) = shared;
    samples(i, 1) = shared + 0.1 * rng.NextGaussian();
    samples(i, 2) = rng.NextGaussian();
    samples(i, 3) = 5.0;  // constant column
  }
  auto corr = Correlation(samples);
  ASSERT_TRUE(corr.ok());
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ((*corr)(i, i), 1.0);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_LE(std::fabs((*corr)(i, j)), 1.0 + 1e-12);
    }
  }
  EXPECT_GT((*corr)(0, 1), 0.9);          // strongly correlated pair
  EXPECT_LT(std::fabs((*corr)(0, 2)), 0.3);  // independent pair
  EXPECT_DOUBLE_EQ((*corr)(0, 3), 0.0);   // constant column decouples
}

TEST(StatsTest, StandardizeColumns) {
  Matrix samples = Matrix::FromRows({{1, 7}, {3, 7}, {5, 7}});
  Vector sd = StandardizeColumns(&samples);
  EXPECT_GT(sd[0], 0.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
  // First column: mean 0, unit variance.
  Vector mu = ColumnMeans(samples);
  EXPECT_NEAR(mu[0], 0.0, 1e-12);
  double var = 0.0;
  for (size_t i = 0; i < 3; ++i) var += samples(i, 0) * samples(i, 0);
  EXPECT_NEAR(var / 3.0, 1.0, 1e-12);
  // Constant column centered to zero but not scaled.
  EXPECT_NEAR(samples(0, 1), 0.0, 1e-12);
}

}  // namespace
}  // namespace fdx
