#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/networks.h"
#include "fd/fd.h"

namespace fdx {
namespace {

TEST(BayesNetTest, AddNodeValidatesParents) {
  BayesNet net;
  ASSERT_TRUE(net.AddNode("a", {"0", "1"}, {}).ok());
  EXPECT_FALSE(net.AddNode("b", {"0", "1"}, {"missing"}).ok());
  EXPECT_FALSE(net.AddNode("c", {"only-one"}, {}).ok());
  EXPECT_TRUE(net.AddNode("b", {"0", "1"}, {"a"}).ok());
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_EQ(net.NumEdges(), 1u);
}

TEST(BayesNetTest, ParentConfigCount) {
  BayesNet net;
  ASSERT_TRUE(net.AddNode("a", {"0", "1"}, {}).ok());
  ASSERT_TRUE(net.AddNode("b", {"0", "1", "2"}, {}).ok());
  ASSERT_TRUE(net.AddNode("c", {"0", "1"}, {"a", "b"}).ok());
  EXPECT_EQ(net.NumParentConfigs(2), 6u);
}

TEST(BayesNetTest, FillFunctionalCptsValidates) {
  BayesNet net = MakeAsiaNetwork();
  EXPECT_TRUE(net.Validate().ok());
}

TEST(BayesNetTest, SampleWithoutCptsFails) {
  BayesNet net;
  ASSERT_TRUE(net.AddNode("a", {"0", "1"}, {}).ok());
  Rng rng(1);
  EXPECT_FALSE(net.Sample(10, &rng).ok());
}

TEST(BayesNetTest, SampleShapeAndValues) {
  BayesNet net = MakeCancerNetwork();
  Rng rng(2);
  auto table = net.Sample(500, &rng);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 500u);
  EXPECT_EQ(table->num_columns(), 5u);
  EXPECT_EQ(table->schema().name(2), "Cancer");
  // Every cell is one of the node's state labels.
  for (size_t r = 0; r < 50; ++r) {
    const std::string v = table->cell(r, 2).ToString();
    EXPECT_TRUE(v == "true" || v == "false") << v;
  }
}

TEST(BayesNetTest, GroundTruthFdsMatchParents) {
  BayesNet net = MakeAsiaNetwork();
  FdSet fds = net.GroundTruthFds();
  EXPECT_EQ(fds.size(), 6u);  // paper Table 1
  EXPECT_EQ(FdEdges(fds).size(), 8u);
}

TEST(BayesNetTest, FunctionalCptsProduceLowFdError) {
  // With epsilon-noise CPTs, parents -> child holds with error ~epsilon.
  BayesNet net = MakeAsiaNetwork(/*epsilon=*/0.02);
  Rng rng(3);
  auto table = net.Sample(5000, &rng);
  ASSERT_TRUE(table.ok());
  EncodedTable encoded = EncodedTable::Encode(*table);
  for (const auto& fd : net.GroundTruthFds()) {
    EXPECT_LT(FdG3Error(encoded, fd), 0.05)
        << fd.ToString(table->schema());
  }
}

TEST(BayesNetTest, DeterministicForSeed) {
  BayesNet net = MakeEarthquakeNetwork();
  Rng rng_a(7), rng_b(7);
  auto a = net.Sample(100, &rng_a);
  auto b = net.Sample(100, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < 100; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_TRUE(a->cell(r, c).EqualsStrict(b->cell(r, c)));
    }
  }
}

struct NetworkSpec {
  const char* name;
  size_t nodes;
  size_t edges;
  size_t fds;
};

class NetworkCatalogTest : public ::testing::TestWithParam<NetworkSpec> {};

TEST_P(NetworkCatalogTest, StructureMatchesPublishedNetworks) {
  const NetworkSpec& spec = GetParam();
  BayesNet net;
  const std::string name = spec.name;
  if (name == "Alarm") net = MakeAlarmNetwork();
  if (name == "Asia") net = MakeAsiaNetwork();
  if (name == "Cancer") net = MakeCancerNetwork();
  if (name == "Child") net = MakeChildNetwork();
  if (name == "Earthquake") net = MakeEarthquakeNetwork();
  EXPECT_EQ(net.num_nodes(), spec.nodes);
  EXPECT_EQ(net.NumEdges(), spec.edges);
  EXPECT_EQ(net.GroundTruthFds().size(), spec.fds);
  EXPECT_TRUE(net.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, NetworkCatalogTest,
    ::testing::Values(NetworkSpec{"Alarm", 37, 46, 25},
                      NetworkSpec{"Asia", 8, 8, 6},
                      NetworkSpec{"Cancer", 5, 4, 3},
                      NetworkSpec{"Child", 20, 25, 19},
                      NetworkSpec{"Earthquake", 5, 4, 3}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(NetworkCatalogTest, MakeAllReturnsFive) {
  auto all = MakeAllBenchmarkNetworks();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "Alarm");
  EXPECT_EQ(all[4].name, "Earthquake");
}

}  // namespace
}  // namespace fdx
