#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "bn/bif_io.h"
#include "bn/networks.h"

namespace fdx {
namespace {

void ExpectNetworksEqual(const BayesNet& a, const BayesNet& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    const BayesNode& na = a.node(i);
    const BayesNode& nb = b.node(i);
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.states, nb.states);
    EXPECT_EQ(na.parents, nb.parents);
    ASSERT_EQ(na.cpt.size(), nb.cpt.size());
    for (size_t row = 0; row < na.cpt.size(); ++row) {
      ASSERT_EQ(na.cpt[row].size(), nb.cpt[row].size());
      for (size_t s = 0; s < na.cpt[row].size(); ++s) {
        EXPECT_DOUBLE_EQ(na.cpt[row][s], nb.cpt[row][s]);
      }
    }
  }
}

TEST(BifIoTest, RoundTripsAllBenchmarkNetworks) {
  for (auto& bn : MakeAllBenchmarkNetworks()) {
    const std::string text = SerializeBayesNet(bn.net);
    auto parsed = ParseBayesNet(text);
    ASSERT_TRUE(parsed.ok()) << bn.name << ": "
                             << parsed.status().ToString();
    ExpectNetworksEqual(bn.net, *parsed);
  }
}

TEST(BifIoTest, RoundTripPreservesSampling) {
  BayesNet original = MakeAsiaNetwork();
  auto parsed = ParseBayesNet(SerializeBayesNet(original));
  ASSERT_TRUE(parsed.ok());
  Rng rng_a(5), rng_b(5);
  auto sample_a = original.Sample(200, &rng_a);
  auto sample_b = parsed->Sample(200, &rng_b);
  ASSERT_TRUE(sample_a.ok() && sample_b.ok());
  for (size_t r = 0; r < 200; ++r) {
    for (size_t c = 0; c < sample_a->num_columns(); ++c) {
      EXPECT_TRUE(sample_a->cell(r, c).EqualsStrict(sample_b->cell(r, c)));
    }
  }
}

TEST(BifIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_bif_test.net").string();
  BayesNet original = MakeCancerNetwork();
  ASSERT_TRUE(WriteBayesNet(original, path).ok());
  auto loaded = ReadBayesNet(path);
  ASSERT_TRUE(loaded.ok());
  ExpectNetworksEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(BifIoTest, ParsesHandWrittenNetwork) {
  const std::string text =
      "# tiny two-node chain\n"
      "node rain yes no\n"
      "node wet yes no\n"
      "parents rain\n"
      "parents wet rain\n"
      "cpt rain 0.3 0.7 ;\n"
      "cpt wet 0.9 0.1 ; 0.2 0.8 ;\n";
  auto net = ParseBayesNet(text);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->num_nodes(), 2u);
  EXPECT_EQ(net->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(net->node(1).cpt[1][1], 0.8);
}

TEST(BifIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseBayesNet("node lonely onlystate\n").ok());
  EXPECT_FALSE(ParseBayesNet("parents ghost\n").ok());
  EXPECT_FALSE(ParseBayesNet("cpt ghost 0.5 0.5 ;\n").ok());
  EXPECT_FALSE(ParseBayesNet("wibble x y\n").ok());
  // Unterminated CPT row.
  EXPECT_FALSE(
      ParseBayesNet("node a x y\nparents a\ncpt a 0.5 0.5\n").ok());
  // Unnormalized CPT fails validation.
  EXPECT_FALSE(
      ParseBayesNet("node a x y\nparents a\ncpt a 0.9 0.9 ;\n").ok());
  // Duplicate node.
  EXPECT_FALSE(ParseBayesNet("node a x y\nnode a x y\n").ok());
}

TEST(BifIoTest, RejectsWrongCptShape) {
  const std::string text =
      "node a x y\n"
      "parents a\n"
      "cpt a 0.5 0.5 ; 0.5 0.5 ;\n";  // root has one config, not two
  EXPECT_FALSE(ParseBayesNet(text).ok());
}

}  // namespace
}  // namespace fdx
