#include <gtest/gtest.h>

#include "data/csv.h"
#include "fd/cfd.h"
#include "util/rng.h"

namespace fdx {
namespace {

bool HasCfd(const std::vector<ConditionalFd>& cfds, const Schema& schema,
            const std::string& rendered) {
  for (const auto& cfd : cfds) {
    if (cfd.ToString(schema) == rendered) return true;
  }
  return false;
}

Table ZipTable(size_t n, uint64_t seed, double noise) {
  // city determines state only conditionally: "springfield" maps to two
  // states, every other city to one.
  Table t{Schema({"city", "state", "other"})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int64_t pick = rng.NextInt(0, 3);
    std::string city, state;
    if (pick == 0) {
      city = "springfield";
      state = rng.NextBernoulli(0.5) ? "IL" : "MA";
    } else if (pick == 1) {
      city = "chicago";
      state = "IL";
    } else if (pick == 2) {
      city = "boston";
      state = "MA";
    } else {
      city = "austin";
      state = "TX";
    }
    if (noise > 0.0 && rng.NextBernoulli(noise)) state = "XX";
    t.AppendRow({Value(city), Value(state),
                 Value(rng.NextInt(0, 5))});
  }
  return t;
}

TEST(CfdTest, FindsConditionalRules) {
  Table t = ZipTable(2000, 1, 0.0);
  CfdOptions options;
  options.min_support = 0.05;
  options.min_confidence = 0.99;
  auto cfds = DiscoverConstantCfds(t, options);
  ASSERT_TRUE(cfds.ok());
  EXPECT_TRUE(HasCfd(*cfds, t.schema(), "(city=chicago) => state=IL"));
  EXPECT_TRUE(HasCfd(*cfds, t.schema(), "(city=boston) => state=MA"));
  EXPECT_TRUE(HasCfd(*cfds, t.schema(), "(city=austin) => state=TX"));
  // springfield is genuinely ambiguous: no rule.
  EXPECT_FALSE(HasCfd(*cfds, t.schema(), "(city=springfield) => state=IL"));
  EXPECT_FALSE(HasCfd(*cfds, t.schema(), "(city=springfield) => state=MA"));
}

TEST(CfdTest, SupportAndConfidenceComputed) {
  Table t = ZipTable(2000, 2, 0.0);
  auto cfds = DiscoverConstantCfds(t, {});
  ASSERT_TRUE(cfds.ok());
  for (const auto& cfd : *cfds) {
    EXPECT_GE(cfd.support, 0.05);
    EXPECT_LE(cfd.support, 1.0);
    EXPECT_GE(cfd.confidence, 0.95);
    EXPECT_LE(cfd.confidence, 1.0);
  }
}

TEST(CfdTest, ConfidenceThresholdToleratesNoise) {
  Table t = ZipTable(2000, 3, 0.03);
  CfdOptions strict;
  strict.min_confidence = 1.0;
  auto exact = DiscoverConstantCfds(t, strict);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(HasCfd(*exact, t.schema(), "(city=chicago) => state=IL"));
  CfdOptions tolerant;
  tolerant.min_confidence = 0.9;
  auto approx = DiscoverConstantCfds(t, tolerant);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(HasCfd(*approx, t.schema(), "(city=chicago) => state=IL"));
}

TEST(CfdTest, MinimalityAcrossLevels) {
  // (city=chicago) => state=IL holds, so the two-condition pattern
  // (city=chicago, other=v) => state=IL must NOT be reported.
  Table t = ZipTable(4000, 4, 0.0);
  CfdOptions options;
  options.min_support = 0.01;
  options.max_lhs_size = 2;
  auto cfds = DiscoverConstantCfds(t, options);
  ASSERT_TRUE(cfds.ok());
  for (const auto& cfd : *cfds) {
    if (cfd.lhs_attrs.size() == 2 &&
        cfd.rhs_attr == 1) {  // consequence on state
      // The pattern must involve springfield (the only city whose
      // state is not already pinned by a single condition).
      bool involves_springfield = false;
      for (size_t i = 0; i < cfd.lhs_attrs.size(); ++i) {
        if (cfd.lhs_attrs[i] == 0 &&
            cfd.lhs_values[i].ToString() == "springfield") {
          involves_springfield = true;
        }
      }
      EXPECT_TRUE(involves_springfield) << cfd.ToString(t.schema());
    }
  }
}

TEST(CfdTest, SupportThresholdPrunesRarePatterns) {
  Table t = ZipTable(1000, 5, 0.0);
  CfdOptions options;
  options.min_support = 0.9;  // nothing covers 90% of rows
  auto cfds = DiscoverConstantCfds(t, options);
  ASSERT_TRUE(cfds.ok());
  EXPECT_TRUE(cfds->empty());
}

TEST(CfdTest, MaxResultsCapsOutput) {
  Table t = ZipTable(1000, 6, 0.0);
  CfdOptions options;
  options.max_results = 2;
  auto cfds = DiscoverConstantCfds(t, options);
  ASSERT_TRUE(cfds.ok());
  EXPECT_LE(cfds->size(), 2u);
}

TEST(CfdTest, TimeBudgetHonored) {
  Table t = ZipTable(5000, 7, 0.0);
  CfdOptions options;
  options.time_budget_seconds = 1e-9;
  auto cfds = DiscoverConstantCfds(t, options);
  EXPECT_FALSE(cfds.ok());
  EXPECT_EQ(cfds.status().code(), StatusCode::kTimeout);
}

TEST(CfdTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(DiscoverConstantCfds(Table{Schema({"one"})}, {}).ok());
  CfdOptions bad;
  bad.min_support = 0.0;
  Table t = ZipTable(10, 8, 0.0);
  EXPECT_FALSE(DiscoverConstantCfds(t, bad).ok());
}

TEST(CfdTest, ToStringRendersPattern) {
  ConditionalFd cfd;
  cfd.lhs_attrs = {0, 1};
  cfd.lhs_values = {Value(std::string("a")), Value(int64_t{3})};
  cfd.rhs_attr = 2;
  cfd.rhs_value = Value(std::string("z"));
  Schema schema({"p", "q", "r"});
  EXPECT_EQ(cfd.ToString(schema), "(p=a, q=3) => r=z");
}

}  // namespace
}  // namespace fdx
