#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace fdx {
namespace {

Matrix Random(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, IdentityIsDiagonal) {
  Matrix eye = Matrix::Identity(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m = Random(3, 5, 1);
  Matrix tt = m.Transpose().Transpose();
  EXPECT_DOUBLE_EQ(m.Subtract(tt).MaxAbs(), 0.0);
}

TEST(MatrixTest, MultiplyAgainstHandComputed) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Matrix m = Random(4, 4, 2);
  Matrix eye = Matrix::Identity(4);
  EXPECT_LT(m.Multiply(eye).Subtract(m).MaxAbs(), 1e-12);
  EXPECT_LT(eye.Multiply(m).Subtract(m).MaxAbs(), 1e-12);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 0, 2}, {0, 3, 0}});
  Vector v = {1, 2, 3};
  Vector out = a.MultiplyVector(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = Random(3, 3, 3);
  Matrix b = Random(3, 3, 4);
  Matrix sum = a.Add(b);
  EXPECT_LT(sum.Subtract(b).Subtract(a).MaxAbs(), 1e-12);
  EXPECT_LT(a.Scale(2.0).Subtract(a.Add(a)).MaxAbs(), 1e-12);
}

TEST(MatrixTest, MaxAbsAndFrobenius) {
  Matrix m = Matrix::FromRows({{3, -4}, {0, 0}});
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(MatrixTest, Submatrix) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix sub = m.Submatrix({0, 2});
  ASSERT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(sub(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 9.0);
}

TEST(MatrixTest, PermuteSymmetricRoundTrip) {
  Matrix m = Random(4, 4, 5);
  // Make symmetric.
  Matrix sym = m.Add(m.Transpose()).Scale(0.5);
  std::vector<size_t> perm = {2, 0, 3, 1};
  Matrix p = sym.PermuteSymmetric(perm);
  // p(i, j) == sym(perm[i], perm[j]).
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p(i, j), sym(perm[i], perm[j]));
    }
  }
  EXPECT_TRUE(p.IsSymmetric());
}

TEST(MatrixTest, IsSymmetric) {
  Matrix m = Matrix::FromRows({{1, 2}, {2, 1}});
  EXPECT_TRUE(m.IsSymmetric());
  m(0, 1) = 3.0;
  EXPECT_FALSE(m.IsSymmetric());
  EXPECT_FALSE(Random(2, 3, 6).IsSymmetric());
}

TEST(MatrixTest, IsSymmetricToleranceIsScaleRelative) {
  // A covariance with large entries accumulates rounding on the order
  // of eps * magnitude; an absolute 1e-6 cutoff would falsely reject it.
  Matrix big = Matrix::FromRows({{1e9, 2e8}, {2e8, 3e9}});
  big(0, 1) += 1e-4;  // far above absolute 1e-6, tiny relative to 1e9
  EXPECT_TRUE(big.IsSymmetric());
  // Genuine asymmetry is still rejected at any scale.
  big(0, 1) = 2e8 + 1e5;
  EXPECT_FALSE(big.IsSymmetric());
  Matrix small = Matrix::FromRows({{1.0, 0.5}, {-0.5, 1.0}});
  EXPECT_FALSE(small.IsSymmetric());
}

TEST(MatrixTest, ToStringContainsValues) {
  Matrix m = Matrix::FromRows({{1.25}});
  EXPECT_NE(m.ToString(2).find("1.25"), std::string::npos);
}

TEST(VectorOpsTest, DotAndNorm) {
  Vector a = {1, 2, 3};
  Vector b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

TEST(VectorOpsTest, Axpy) {
  Vector out = Axpy({1, 1}, 2.0, {3, -1});
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

}  // namespace
}  // namespace fdx
