#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/csv.h"

namespace fdx {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto table = ParseCsv("a,b,c\n1,x,2.5\n2,y,3.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().name(0), "a");
  EXPECT_EQ(table->cell(0, 0).type(), ValueType::kInt);
  EXPECT_EQ(table->cell(0, 1).type(), ValueType::kString);
  EXPECT_EQ(table->cell(0, 2).type(), ValueType::kDouble);
}

TEST(CsvTest, EmptyAndNullTokensBecomeNull) {
  auto table = ParseCsv("a,b\n,NULL\nNA,?\n1,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->cell(0, 0).is_null());
  EXPECT_TRUE(table->cell(0, 1).is_null());
  EXPECT_TRUE(table->cell(1, 0).is_null());
  EXPECT_TRUE(table->cell(1, 1).is_null());
  EXPECT_FALSE(table->cell(2, 0).is_null());
}

TEST(CsvTest, QuotedFields) {
  auto table = ParseCsv("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 0).AsString(), "x,y");
  EXPECT_EQ(table->cell(0, 1).AsString(), "say \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->cell(0, 1).AsInt(), 2);
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().name(0), "col0");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 1).AsInt(), 2);
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RaggedRowErrorNamesLine) {
  auto table = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos)
      << table.status().message();
}

TEST(CsvTest, DuplicateHeaderRejected) {
  auto table = ParseCsv("a,b,a\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("'a'"), std::string::npos);
}

TEST(CsvTest, EmptyHeaderRejected) {
  auto table = ParseCsv("a,,c\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("line 1"), std::string::npos);
}

TEST(CsvTest, HeaderlessInputSkipsHeaderValidation) {
  CsvOptions options;
  options.has_header = false;
  EXPECT_TRUE(ParseCsv("1,2\n3,4\n", options).ok());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/file.csv").ok());
}

TEST(CsvTest, ReadCsvFromStringMatchesReadCsv) {
  // ReadCsv is implemented as "slurp, then ReadCsvFromString"; pin the
  // two paths to identical results so they can never diverge.
  const std::string text = "a,b,c\n1,x,2.5\n,NULL,\"q,z\"\n3,y,4.5\n";
  auto from_string = ReadCsvFromString(text);
  ASSERT_TRUE(from_string.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_csv_string_test.csv")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  auto from_file = ReadCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok());

  ASSERT_EQ(from_string->num_rows(), from_file->num_rows());
  ASSERT_EQ(from_string->num_columns(), from_file->num_columns());
  for (size_t r = 0; r < from_string->num_rows(); ++r) {
    for (size_t c = 0; c < from_string->num_columns(); ++c) {
      EXPECT_EQ(from_string->cell(r, c).ToString(),
                from_file->cell(r, c).ToString())
          << "cell " << r << "," << c;
    }
  }
}

TEST(CsvTest, ReadCsvFromStringKeepsLineNumbersInErrors) {
  auto ragged = ReadCsvFromString("a,b\n1,2\n3\n");
  ASSERT_FALSE(ragged.ok());
  EXPECT_NE(ragged.status().message().find("line 3"), std::string::npos)
      << ragged.status().ToString();
}

TEST(CsvTest, ReadCsvFromStringHandlesMissingTrailingNewline) {
  auto table = ReadCsvFromString("a,b\n1,2\n3,4");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->cell(1, 1).AsInt(), 4);
}

TEST(CsvTest, ReadCsvFromStringEmptyInputYieldsEmptyTable) {
  auto table = ReadCsvFromString("");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 0u);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t{Schema({"name", "count", "note"})};
  t.AppendRow({Value(std::string("alpha")), Value(int64_t{1}),
               Value(std::string("a,b"))});
  t.AppendRow({Value(std::string("beta")), Value(int64_t{2}), Value::Null()});
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->cell(0, 0).AsString(), "alpha");
  EXPECT_EQ(back->cell(0, 2).AsString(), "a,b");  // quoting survived
  EXPECT_EQ(back->cell(1, 1).AsInt(), 2);
  EXPECT_TRUE(back->cell(1, 2).is_null());
  std::remove(path.c_str());
}

// --- chunked streaming reader ------------------------------------------

/// Concatenates the chunks a chunked read produces back into one table.
Result<Table> ReassembleChunks(const std::string& text,
                               const CsvOptions& options, size_t chunk_rows,
                               size_t* num_chunks = nullptr) {
  Table out;
  bool first = true;
  size_t count = 0;
  FDX_RETURN_IF_ERROR(ReadCsvChunkedFromString(
      text, options, chunk_rows, [&](Table&& chunk) {
        ++count;
        if (first) {
          out = Table{chunk.schema()};
          first = false;
        }
        std::vector<Value> row(chunk.num_columns());
        for (size_t r = 0; r < chunk.num_rows(); ++r) {
          for (size_t c = 0; c < chunk.num_columns(); ++c) {
            row[c] = chunk.cell(r, c);
          }
          out.AppendRow(row);
        }
        return Status::OK();
      }));
  if (num_chunks != nullptr) *num_chunks = count;
  return out;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().names(), b.schema().names());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Value& x = a.cell(r, c);
      const Value& y = b.cell(r, c);
      ASSERT_EQ(static_cast<int>(x.type()), static_cast<int>(y.type()))
          << "row " << r << " col " << c;
      if (!x.is_null()) {
        EXPECT_TRUE(x.EqualsStrict(y)) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(CsvChunkedTest, ChunksReassembleToTheWholeFileRead) {
  std::string text = "a,b,c\n";
  for (int r = 0; r < 53; ++r) {
    text += std::to_string(r) + "," + (r % 7 == 0 ? "NULL" : "x" +
            std::to_string(r % 3)) + "," + std::to_string(r * 0.5) + "\n";
  }
  auto whole = ReadCsvFromString(text);
  ASSERT_TRUE(whole.ok());
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{53}, size_t{1000}}) {
    size_t num_chunks = 0;
    auto chunked = ReassembleChunks(text, {}, chunk_rows, &num_chunks);
    ASSERT_TRUE(chunked.ok()) << chunk_rows;
    ExpectTablesIdentical(whole.value(), chunked.value());
    EXPECT_EQ(num_chunks, (53 + chunk_rows - 1) / chunk_rows);
  }
}

TEST(CsvChunkedTest, MidFileErrorReportsTheSameLineOnBothPaths) {
  // Row 4 (line 5, counting the header) is ragged. The chunked reader
  // must cite the same 1-based physical line as the whole-file reader,
  // no matter where the chunk boundaries fall.
  const std::string text = "a,b\n1,2\n3,4\n5,6\nbroken\n7,8\n";
  auto whole = ReadCsvFromString(text);
  ASSERT_FALSE(whole.ok());
  ASSERT_NE(whole.status().message().find("line 5"), std::string::npos)
      << whole.status().ToString();
  for (size_t chunk_rows : {size_t{1}, size_t{2}, size_t{100}}) {
    auto chunked = ReassembleChunks(text, {}, chunk_rows);
    ASSERT_FALSE(chunked.ok()) << chunk_rows;
    EXPECT_EQ(chunked.status().code(), whole.status().code());
    EXPECT_EQ(chunked.status().message(), whole.status().message());
  }
}

TEST(CsvChunkedTest, HeaderlessChunksCarrySynthesizedSchema) {
  const std::string text = "1,2\n3,4\n5,6\n";
  CsvOptions options;
  options.has_header = false;
  size_t num_chunks = 0;
  auto chunked = ReassembleChunks(text, options, 2, &num_chunks);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(num_chunks, 2u);
  EXPECT_EQ(chunked->schema().name(0), "col0");
  EXPECT_EQ(chunked->schema().name(1), "col1");
  EXPECT_EQ(chunked->num_rows(), 3u);
}

TEST(CsvChunkedTest, RowLessInputStillDeliversOneChunkWithSchema) {
  size_t num_chunks = 0;
  auto chunked = ReassembleChunks("a,b\n", {}, 4, &num_chunks);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(num_chunks, 1u);
  EXPECT_EQ(chunked->num_rows(), 0u);
  EXPECT_EQ(chunked->schema().name(1), "b");
}

TEST(CsvChunkedTest, SinkErrorAbortsTheRead) {
  const std::string text = "a\n1\n2\n3\n4\n";
  size_t calls = 0;
  const Status status = ReadCsvChunkedFromString(
      text, {}, 1, [&](Table&&) {
        ++calls;
        return calls == 2 ? Status::Internal("sink says stop")
                          : Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "sink says stop");
  EXPECT_EQ(calls, 2u);
}

TEST(CsvChunkedTest, FileAndStringChunkingAgree) {
  std::string text = "a,b\n";
  for (int r = 0; r < 20; ++r) {
    text += std::to_string(r) + "," + std::to_string(r % 3) + "\n";
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_csv_chunk_test.csv")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  size_t rows_string = 0;
  size_t rows_file = 0;
  ASSERT_TRUE(ReadCsvChunkedFromString(text, {}, 6, [&](Table&& chunk) {
                rows_string += chunk.num_rows();
                return Status::OK();
              }).ok());
  ASSERT_TRUE(ReadCsvChunked(path, {}, 6, [&](Table&& chunk) {
                rows_file += chunk.num_rows();
                return Status::OK();
              }).ok());
  EXPECT_EQ(rows_string, 20u);
  EXPECT_EQ(rows_file, 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdx
