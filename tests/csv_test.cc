#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/csv.h"

namespace fdx {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto table = ParseCsv("a,b,c\n1,x,2.5\n2,y,3.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().name(0), "a");
  EXPECT_EQ(table->cell(0, 0).type(), ValueType::kInt);
  EXPECT_EQ(table->cell(0, 1).type(), ValueType::kString);
  EXPECT_EQ(table->cell(0, 2).type(), ValueType::kDouble);
}

TEST(CsvTest, EmptyAndNullTokensBecomeNull) {
  auto table = ParseCsv("a,b\n,NULL\nNA,?\n1,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->cell(0, 0).is_null());
  EXPECT_TRUE(table->cell(0, 1).is_null());
  EXPECT_TRUE(table->cell(1, 0).is_null());
  EXPECT_TRUE(table->cell(1, 1).is_null());
  EXPECT_FALSE(table->cell(2, 0).is_null());
}

TEST(CsvTest, QuotedFields) {
  auto table = ParseCsv("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 0).AsString(), "x,y");
  EXPECT_EQ(table->cell(0, 1).AsString(), "say \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->cell(0, 1).AsInt(), 2);
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().name(0), "col0");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 1).AsInt(), 2);
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RaggedRowErrorNamesLine) {
  auto table = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos)
      << table.status().message();
}

TEST(CsvTest, DuplicateHeaderRejected) {
  auto table = ParseCsv("a,b,a\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("'a'"), std::string::npos);
}

TEST(CsvTest, EmptyHeaderRejected) {
  auto table = ParseCsv("a,,c\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("line 1"), std::string::npos);
}

TEST(CsvTest, HeaderlessInputSkipsHeaderValidation) {
  CsvOptions options;
  options.has_header = false;
  EXPECT_TRUE(ParseCsv("1,2\n3,4\n", options).ok());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/file.csv").ok());
}

TEST(CsvTest, ReadCsvFromStringMatchesReadCsv) {
  // ReadCsv is implemented as "slurp, then ReadCsvFromString"; pin the
  // two paths to identical results so they can never diverge.
  const std::string text = "a,b,c\n1,x,2.5\n,NULL,\"q,z\"\n3,y,4.5\n";
  auto from_string = ReadCsvFromString(text);
  ASSERT_TRUE(from_string.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_csv_string_test.csv")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  auto from_file = ReadCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok());

  ASSERT_EQ(from_string->num_rows(), from_file->num_rows());
  ASSERT_EQ(from_string->num_columns(), from_file->num_columns());
  for (size_t r = 0; r < from_string->num_rows(); ++r) {
    for (size_t c = 0; c < from_string->num_columns(); ++c) {
      EXPECT_EQ(from_string->cell(r, c).ToString(),
                from_file->cell(r, c).ToString())
          << "cell " << r << "," << c;
    }
  }
}

TEST(CsvTest, ReadCsvFromStringKeepsLineNumbersInErrors) {
  auto ragged = ReadCsvFromString("a,b\n1,2\n3\n");
  ASSERT_FALSE(ragged.ok());
  EXPECT_NE(ragged.status().message().find("line 3"), std::string::npos)
      << ragged.status().ToString();
}

TEST(CsvTest, ReadCsvFromStringHandlesMissingTrailingNewline) {
  auto table = ReadCsvFromString("a,b\n1,2\n3,4");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->cell(1, 1).AsInt(), 4);
}

TEST(CsvTest, ReadCsvFromStringEmptyInputYieldsEmptyTable) {
  auto table = ReadCsvFromString("");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 0u);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t{Schema({"name", "count", "note"})};
  t.AppendRow({Value(std::string("alpha")), Value(int64_t{1}),
               Value(std::string("a,b"))});
  t.AppendRow({Value(std::string("beta")), Value(int64_t{2}), Value::Null()});
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdx_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->cell(0, 0).AsString(), "alpha");
  EXPECT_EQ(back->cell(0, 2).AsString(), "a,b");  // quoting survived
  EXPECT_EQ(back->cell(1, 1).AsInt(), 2);
  EXPECT_TRUE(back->cell(1, 2).is_null());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdx
