#include <gtest/gtest.h>

#include "data/csv.h"
#include "fd/fd.h"
#include "fd/partition.h"
#include "synth/generator.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(PartitionTest, FromColumnGroupsEqualValues) {
  Table t = TableFromCsv("x\na\nb\na\nc\nb\na\n");
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition p = StrippedPartition::FromColumn(e, 0);
  // a: rows 0,2,5; b: rows 1,4; c singleton stripped.
  EXPECT_EQ(p.NumClusters(), 2u);
  EXPECT_EQ(p.StrippedSize(), 5u);
  EXPECT_EQ(p.num_rows(), 6u);
}

TEST(PartitionTest, NullsAreStrippedSingletons) {
  Table t = TableFromCsv("x\na\n\n\na\n");
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition p = StrippedPartition::FromColumn(e, 0);
  EXPECT_EQ(p.NumClusters(), 1u);  // the two a's; nulls never group
  EXPECT_EQ(p.StrippedSize(), 2u);
}

TEST(PartitionTest, MultiplyMatchesJointPartition) {
  Table t = TableFromCsv("x,y\n1,a\n1,b\n1,a\n2,a\n2,a\n");
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition px = StrippedPartition::FromColumn(e, 0);
  StrippedPartition py = StrippedPartition::FromColumn(e, 1);
  StrippedPartition pxy = StrippedPartition::Multiply(px, py);
  // Joint groups: (1,a): rows 0,2; (1,b): row 1 (stripped); (2,a): 3,4.
  EXPECT_EQ(pxy.NumClusters(), 2u);
  EXPECT_EQ(pxy.StrippedSize(), 4u);
}

TEST(PartitionTest, MultiplyIsCommutative) {
  SyntheticConfig config;
  config.num_tuples = 200;
  config.num_attributes = 4;
  config.seed = 17;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable e = EncodedTable::Encode(ds->clean);
  StrippedPartition pa = StrippedPartition::FromColumn(e, 0);
  StrippedPartition pb = StrippedPartition::FromColumn(e, 1);
  StrippedPartition ab = StrippedPartition::Multiply(pa, pb);
  StrippedPartition ba = StrippedPartition::Multiply(pb, pa);
  EXPECT_EQ(ab.NumClusters(), ba.NumClusters());
  EXPECT_EQ(ab.StrippedSize(), ba.StrippedSize());
}

TEST(PartitionTest, SuperKeyDetection) {
  Table t = TableFromCsv("id,v\n1,a\n2,a\n3,b\n");
  EncodedTable e = EncodedTable::Encode(t);
  EXPECT_TRUE(StrippedPartition::FromColumn(e, 0).IsSuperKey());
  EXPECT_FALSE(StrippedPartition::FromColumn(e, 1).IsSuperKey());
  EXPECT_DOUBLE_EQ(StrippedPartition::FromColumn(e, 0).KeyError(), 0.0);
}

TEST(PartitionTest, KeyErrorCountsDuplicates) {
  Table t = TableFromCsv("x\na\na\nb\nb\nb\n");
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition p = StrippedPartition::FromColumn(e, 0);
  // To make x a key: remove 1 from the a-group and 2 from the b-group.
  EXPECT_NEAR(p.KeyError(), 3.0 / 5.0, 1e-12);
}

TEST(PartitionTest, FdErrorZeroForExactFd) {
  Table t = TableFromCsv("x,y\n1,a\n1,a\n2,b\n2,b\n");
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition px = StrippedPartition::FromColumn(e, 0);
  StrippedPartition pxy = StrippedPartition::Multiply(
      px, StrippedPartition::FromColumn(e, 1));
  EXPECT_DOUBLE_EQ(px.FdError(pxy), 0.0);
}

TEST(PartitionTest, FdErrorMatchesG3OnCleanData) {
  // Cross-check the partition-based error against the hash-based g3 on
  // null-free data (the two differ only in null handling).
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_attributes = 6;
  config.noise_rate = 0.1;
  config.seed = 23;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable e = EncodedTable::Encode(ds->noisy);
  for (size_t x = 0; x < 6; ++x) {
    for (size_t y = 0; y < 6; ++y) {
      if (x == y) continue;
      StrippedPartition px = StrippedPartition::FromColumn(e, x);
      StrippedPartition pxy = StrippedPartition::Multiply(
          px, StrippedPartition::FromColumn(e, y));
      const double partition_error = px.FdError(pxy);
      const double g3 = FdG3Error(e, FunctionalDependency({x}, y));
      EXPECT_NEAR(partition_error, g3, 1e-9)
          << "FD " << x << " -> " << y;
    }
  }
}

TEST(PartitionTest, EmptyTable) {
  Table t{Schema({"x"})};
  EncodedTable e = EncodedTable::Encode(t);
  StrippedPartition p = StrippedPartition::FromColumn(e, 0);
  EXPECT_TRUE(p.IsSuperKey());
  EXPECT_DOUBLE_EQ(p.KeyError(), 0.0);
}

}  // namespace
}  // namespace fdx
