#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "data/csv.h"

namespace fdx {
namespace {

/// Every test disarms on exit so state never leaks across cases.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmFaults(); }
};

// Must run first in this binary: the FDX_FAULTS environment variable is
// only consulted until the first programmatic ArmFaults/DisarmFaults
// call supersedes it.
TEST_F(FaultInjectionTest, AEnvSpecIsArmedLazily) {
  ASSERT_EQ(setenv("FDX_FAULTS", "env.point:2", 1), 0);
  EXPECT_TRUE(FaultsArmed());
  EXPECT_FALSE(FaultTriggered("env.point"));  // visit 1
  EXPECT_TRUE(FaultTriggered("env.point"));   // visit 2
  EXPECT_FALSE(FaultTriggered("env.point"));  // visit 3
  ASSERT_EQ(unsetenv("FDX_FAULTS"), 0);
  DisarmFaults();
  EXPECT_FALSE(FaultsArmed());
}

TEST_F(FaultInjectionTest, UnarmedNeverTriggers) {
  DisarmFaults();
  EXPECT_FALSE(FaultsArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultTriggered("glasso.sweep"));
  }
  EXPECT_EQ(FaultVisits("glasso.sweep"), 0u);
}

TEST_F(FaultInjectionTest, AlwaysFires) {
  ASSERT_TRUE(ArmFaults("p").ok());
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_FALSE(FaultTriggered("q"));  // unarmed point
}

TEST_F(FaultInjectionTest, StarIsAlways) {
  ASSERT_TRUE(ArmFaults("p:*").ok());
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
}

TEST_F(FaultInjectionTest, ExactVisitFiresOnce) {
  ASSERT_TRUE(ArmFaults("p:3").ok());
  EXPECT_FALSE(FaultTriggered("p"));
  EXPECT_FALSE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_FALSE(FaultTriggered("p"));
  EXPECT_EQ(FaultVisits("p"), 4u);
}

TEST_F(FaultInjectionTest, FromVisitFiresFromThenOn) {
  ASSERT_TRUE(ArmFaults("p:2+").ok());
  EXPECT_FALSE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
}

TEST_F(FaultInjectionTest, CommaSeparatedSpecsAndSpaces) {
  ASSERT_TRUE(ArmFaults(" a:1 , b , c:2+ ").ok());
  auto points = ArmedFaultPoints();
  EXPECT_EQ(points.size(), 3u);
  EXPECT_TRUE(FaultTriggered("a"));
  EXPECT_TRUE(FaultTriggered("b"));
  EXPECT_FALSE(FaultTriggered("c"));
  EXPECT_TRUE(FaultTriggered("c"));
}

TEST_F(FaultInjectionTest, ReArmingResetsCounters) {
  ASSERT_TRUE(ArmFaults("p:1").ok());
  EXPECT_TRUE(FaultTriggered("p"));
  ASSERT_TRUE(ArmFaults("p:1").ok());
  EXPECT_TRUE(FaultTriggered("p"));  // counter restarted
}

TEST_F(FaultInjectionTest, EveryNthFiresOnMultiples) {
  ASSERT_TRUE(ArmFaults("p:3%").ok());
  // Fires on visits 3, 6, 9, ... — a sustained fault *rate*, unlike N
  // (one-shot) or N+ (permanent). This is what keeps an always-on
  // socket fault from wedging an event loop: most visits still succeed.
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(FaultTriggered("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FaultInjectionTest, EveryFirstIsAlways) {
  ASSERT_TRUE(ArmFaults("p:1%").ok());
  EXPECT_TRUE(FaultTriggered("p"));
  EXPECT_TRUE(FaultTriggered("p"));
}

TEST_F(FaultInjectionTest, MalformedSpecsRejected) {
  EXPECT_EQ(ArmFaults("p:").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults(":3").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:abc").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:3x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:%").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:0%").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFaults("p:3%%").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(FaultsArmed());  // a bad spec arms nothing
}

TEST_F(FaultInjectionTest, EmptySpecDisarms) {
  ASSERT_TRUE(ArmFaults("p").ok());
  ASSERT_TRUE(ArmFaults("").ok());
  EXPECT_FALSE(FaultsArmed());
  EXPECT_FALSE(FaultTriggered("p"));
}

TEST_F(FaultInjectionTest, CsvReadFaultPoint) {
  ASSERT_TRUE(ArmFaults("csv.read").ok());
  auto table = ReadCsv("/tmp/definitely-missing.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
  EXPECT_NE(table.status().message().find("injected fault"),
            std::string::npos);
}

}  // namespace
}  // namespace fdx
