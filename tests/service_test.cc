#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.h"
#include "util/json_parser.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "service/session_registry.h"
#include "util/fingerprint.h"
#include "util/json_writer.h"

namespace fdx {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonParserTest, ParsesScalars) {
  auto v = JsonValue::Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = JsonValue::Parse("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());

  v = JsonValue::Parse("-12.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number_value(), -1250.0);

  v = JsonValue::Parse("\"hi\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "hi");
}

TEST(JsonParserTest, ParsesNestedDocument) {
  auto v = JsonValue::Parse(
      R"({"op":"discover","rows":[[1,"x",null],[2,"y",3.5]],"nested":{"deep":[true]}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->StringOr("op", ""), "discover");
  const JsonValue* rows = v->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array().size(), 2u);
  EXPECT_DOUBLE_EQ(rows->array()[0].array()[0].number_value(), 1.0);
  EXPECT_TRUE(rows->array()[0].array()[2].is_null());
  const JsonValue* nested = v->Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->Find("deep")->array()[0].bool_value());
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  auto v = JsonValue::Parse(R"("a\n\t\"\\\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string_value(), "a\n\t\"\\A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, LastDuplicateKeyWins) {
  auto v = JsonValue::Parse(R"({"a":1,"a":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("a")->number_value(), 2.0);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{}extra").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"").ok());  // lone surrogate
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("1e999").ok());  // overflows to infinity
}

TEST(JsonParserTest, RejectsAbsurdNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonParserTest, RoundTripsWriterEscaping) {
  // The writer's escaping and the parser's decoding must be inverse
  // functions — the protocol ships arbitrary cell strings through both.
  std::string nasty;
  for (int c = 1; c < 0x20; ++c) nasty.push_back(static_cast<char>(c));
  nasty += "\"\\ plain \xC3\xA9\xF0\x9F\x98\x80";
  JsonWriter writer;
  writer.String(nasty);
  auto parsed = JsonValue::Parse(writer.TakeString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value(), nasty);
}

// --------------------------------------------------------- Fingerprint

TEST(FingerprintTest, FramingPreventsConcatenationCollisions) {
  Fingerprint a;
  a.UpdateString("ab");
  a.UpdateString("c");
  Fingerprint b;
  b.UpdateString("a");
  b.UpdateString("bc");
  EXPECT_NE(a.Hex(), b.Hex());
  EXPECT_EQ(a.Hex().size(), 32u);
}

TEST(FingerprintTest, Deterministic) {
  Fingerprint a;
  a.UpdateU64(7);
  a.UpdateDouble(1.5);
  Fingerprint b;
  b.UpdateU64(7);
  b.UpdateDouble(1.5);
  EXPECT_EQ(a.Hex(), b.Hex());
}

Table MakeTable(std::vector<std::string> names,
                const std::vector<std::vector<int64_t>>& rows) {
  Table table{Schema(std::move(names))};
  for (const auto& row : rows) {
    std::vector<Value> cells;
    for (int64_t v : row) cells.emplace_back(v);
    table.AppendRow(std::move(cells));
  }
  return table;
}

TEST(FingerprintTableTest, SensitiveToCellsSchemaAndTypes) {
  const Table base = MakeTable({"a", "b"}, {{1, 2}, {3, 4}});
  EXPECT_EQ(FingerprintTable(base),
            FingerprintTable(MakeTable({"a", "b"}, {{1, 2}, {3, 4}})));
  EXPECT_NE(FingerprintTable(base),
            FingerprintTable(MakeTable({"a", "b"}, {{1, 2}, {3, 5}})));
  EXPECT_NE(FingerprintTable(base),
            FingerprintTable(MakeTable({"a", "c"}, {{1, 2}, {3, 4}})));

  // null, 0, and "" are three different cells, not one.
  Table null_cell{Schema({"a"})};
  null_cell.AppendRow({Value::Null()});
  Table zero_cell{Schema({"a"})};
  zero_cell.AppendRow({Value(int64_t{0})});
  Table empty_cell{Schema({"a"})};
  empty_cell.AppendRow({Value(std::string())});
  EXPECT_NE(FingerprintTable(null_cell), FingerprintTable(zero_cell));
  EXPECT_NE(FingerprintTable(null_cell), FingerprintTable(empty_cell));
  EXPECT_NE(FingerprintTable(zero_cell), FingerprintTable(empty_cell));
}

TEST(FingerprintTableTest, BatchBoundariesAreResultRelevant) {
  // One 4-row batch vs two 2-row batches: batch-local pairing makes
  // these different datasets to IncrementalFdx, so their running
  // fingerprints must differ too.
  const Table whole = MakeTable({"a", "b"}, {{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  const Table first = MakeTable({"a", "b"}, {{1, 2}, {3, 4}});
  const Table second = MakeTable({"a", "b"}, {{5, 6}, {7, 8}});

  Fingerprint one_batch;
  one_batch.UpdateString("batch");
  UpdateTableFingerprint(&one_batch, whole);

  Fingerprint two_batches;
  two_batches.UpdateString("batch");
  UpdateTableFingerprint(&two_batches, first);
  two_batches.UpdateString("batch");
  UpdateTableFingerprint(&two_batches, second);

  EXPECT_NE(one_batch.Hex(), two_batches.Hex());
}

// -------------------------------------------------- options / protocol

TEST(CanonicalOptionsKeyTest, TracksResultAffectingKnobsOnly) {
  const FdxOptions base;
  FdxOptions changed = base;
  changed.lambda = 0.2;
  EXPECT_NE(CanonicalOptionsKey(base), CanonicalOptionsKey(changed));

  changed = base;
  changed.recovery.enabled = false;
  EXPECT_NE(CanonicalOptionsKey(base), CanonicalOptionsKey(changed));

  changed = base;
  changed.transform.seed = 99;
  EXPECT_NE(CanonicalOptionsKey(base), CanonicalOptionsKey(changed));

  // Warm-started solves are tolerance-equal but not byte-equal to cold
  // ones, so the reuse knob must fragment the cache.
  changed = base;
  changed.reuse_solver_state = false;
  EXPECT_NE(CanonicalOptionsKey(base), CanonicalOptionsKey(changed));

  // Output-invariant knobs: threads (determinism contract) and the
  // wall-clock budget must NOT fragment the cache.
  changed = base;
  changed.threads = 7;
  changed.time_budget_seconds = 123.0;
  EXPECT_EQ(CanonicalOptionsKey(base), CanonicalOptionsKey(changed));
}

TEST(ParseOptionsJsonTest, AppliesKnownKeys) {
  auto json = JsonValue::Parse(
      R"({"estimator":"seqlasso","lambda":0.11,"seed":5,"normalize":false,
          "time_budget_seconds":2.5,"recovery":false})");
  ASSERT_TRUE(json.ok());
  auto options = ParseOptionsJson(*json, FdxOptions{});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->estimator, StructureEstimator::kSequentialLasso);
  EXPECT_DOUBLE_EQ(options->lambda, 0.11);
  EXPECT_EQ(options->transform.seed, 5u);
  EXPECT_FALSE(options->normalize_covariance);
  EXPECT_DOUBLE_EQ(options->time_budget_seconds, 2.5);
  EXPECT_FALSE(options->recovery.enabled);

  auto warm = JsonValue::Parse(R"({"warm_start":false})");
  ASSERT_TRUE(warm.ok());
  auto cold_options = ParseOptionsJson(*warm, FdxOptions{});
  ASSERT_TRUE(cold_options.ok()) << cold_options.status().ToString();
  EXPECT_FALSE(cold_options->reuse_solver_state);
}

TEST(ParseOptionsJsonTest, RejectsUnknownAndMistypedKeys) {
  auto unknown = JsonValue::Parse(R"({"lambada":0.1})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(ParseOptionsJson(*unknown, FdxOptions{}).ok());

  auto mistyped = JsonValue::Parse(R"({"lambda":"big"})");
  ASSERT_TRUE(mistyped.ok());
  EXPECT_FALSE(ParseOptionsJson(*mistyped, FdxOptions{}).ok());

  auto bad_estimator = JsonValue::Parse(R"({"estimator":"ols"})");
  ASSERT_TRUE(bad_estimator.ok());
  EXPECT_FALSE(ParseOptionsJson(*bad_estimator, FdxOptions{}).ok());

  auto not_object = JsonValue::Parse("[1]");
  ASSERT_TRUE(not_object.ok());
  EXPECT_FALSE(ParseOptionsJson(*not_object, FdxOptions{}).ok());
}

TEST(JsonCellToValueTest, MapsKinds) {
  auto integral = JsonCellToValue(JsonValue::MakeNumber(42.0));
  ASSERT_TRUE(integral.ok());
  EXPECT_EQ(integral->type(), ValueType::kInt);
  EXPECT_EQ(integral->AsInt(), 42);

  auto fractional = JsonCellToValue(JsonValue::MakeNumber(1.25));
  ASSERT_TRUE(fractional.ok());
  EXPECT_EQ(fractional->type(), ValueType::kDouble);

  auto null_cell = JsonCellToValue(JsonValue());
  ASSERT_TRUE(null_cell.ok());
  EXPECT_EQ(null_cell->type(), ValueType::kNull);

  EXPECT_FALSE(JsonCellToValue(JsonValue::MakeBool(true)).ok());
}

TEST(RenderErrorResponseTest, UnavailableCarriesRetryHint) {
  const std::string busy =
      RenderErrorResponse("discover", Status::Unavailable("queue full"));
  auto parsed = JsonValue::Parse(busy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->BoolOr("ok", true));
  EXPECT_TRUE(parsed->BoolOr("retry", false));
  EXPECT_EQ(parsed->Find("error")->StringOr("code", ""), "Unavailable");

  const std::string invalid =
      RenderErrorResponse("open", Status::InvalidArgument("bad schema"));
  parsed = JsonValue::Parse(invalid);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("retry"), nullptr);
}

// ------------------------------------------------------------ JobQueue

TEST(JobQueueTest, ExecutesSubmittedJobs) {
  JobQueue queue(2, 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Submit([&ran] { ran.fetch_add(1); }).ok());
  }
  EXPECT_TRUE(queue.Drain(5.0));
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(queue.executed(), 4u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(JobQueueTest, RejectsBeyondCapacityWithUnavailable) {
  JobQueue queue(1, 2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  // Occupy the worker and the one remaining admission slot.
  ASSERT_TRUE(queue.Submit([gate] { gate.wait(); }).ok());
  ASSERT_TRUE(queue.Submit([gate] { gate.wait(); }).ok());
  const Status third = queue.Submit([] {});
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.rejected(), 1u);
  release.set_value();
  EXPECT_TRUE(queue.Drain(5.0));
  EXPECT_EQ(queue.executed(), 2u);
}

TEST(JobQueueTest, CloseIntakeRejectsNewWork) {
  JobQueue queue(1, 4);
  queue.CloseIntake();
  const Status rejected = queue.Submit([] {});
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
}

TEST(JobQueueTest, DrainTimesOutOnStuckJob) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  JobQueue queue(1, 1);
  ASSERT_TRUE(queue.Submit([gate] { gate.wait(); }).ok());
  EXPECT_FALSE(queue.Drain(0.05));
  release.set_value();  // let the destructor's unbounded drain finish
}

// ----------------------------------------------------------- Sessions

TEST(SessionRegistryTest, OpenGetCloseLifecycle) {
  SessionRegistry registry(4, 0.0);
  auto first = registry.Open(Schema({"a", "b"}), FdxOptions{});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->id, "s-1");
  auto second = registry.Open(Schema({"c"}), FdxOptions{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->id, "s-2");
  EXPECT_EQ(registry.size(), 2u);

  auto found = registry.Get("s-1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->fdx.schema().size(), 2u);

  auto missing = registry.Get("s-99");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(registry.Close("s-1"));
  EXPECT_FALSE(registry.Close("s-1"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SessionRegistryTest, EnforcesMaxSessions) {
  SessionRegistry registry(2, 0.0);
  ASSERT_TRUE(registry.Open(Schema({"a"}), FdxOptions{}).ok());
  ASSERT_TRUE(registry.Open(Schema({"a"}), FdxOptions{}).ok());
  auto third = registry.Open(Schema({"a"}), FdxOptions{});
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  // Freeing a slot lets the next open through; ids never recycle.
  ASSERT_TRUE(registry.Close("s-1"));
  auto fourth = registry.Open(Schema({"a"}), FdxOptions{});
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ((*fourth)->id, "s-3");
}

TEST(SessionRegistryTest, EvictsIdleSessionsAfterTtl) {
  SessionRegistry registry(4, 0.02);
  ASSERT_TRUE(registry.Open(Schema({"a"}), FdxOptions{}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(registry.EvictExpired(), 1u);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.evicted(), 1u);
  EXPECT_EQ(registry.Get("s-1").status().code(), StatusCode::kNotFound);
}

TEST(SessionRegistryTest, GetRefreshesTtl) {
  SessionRegistry registry(4, 0.2);
  ASSERT_TRUE(registry.Open(Schema({"a"}), FdxOptions{}).ok());
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(registry.Get("s-1").ok()) << "iteration " << i;
  }
}

// -------------------------------------------------------- ResultCache

TEST(ResultCacheTest, HitMissAndCounters) {
  ResultCache cache(4);
  std::string payload;
  EXPECT_FALSE(cache.Lookup("k1", &payload));
  cache.Insert("k1", "v1");
  ASSERT_TRUE(cache.Lookup("k1", &payload));
  EXPECT_EQ(payload, "v1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  std::string payload;
  ASSERT_TRUE(cache.Lookup("a", &payload));  // "b" is now LRU
  cache.Insert("c", "3");
  EXPECT_FALSE(cache.Lookup("b", &payload));
  EXPECT_TRUE(cache.Lookup("a", &payload));
  EXPECT_TRUE(cache.Lookup("c", &payload));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, InsertRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Insert("a", "old");
  cache.Insert("a", "new");
  EXPECT_EQ(cache.size(), 1u);
  std::string payload;
  ASSERT_TRUE(cache.Lookup("a", &payload));
  EXPECT_EQ(payload, "new");
}

TEST(ResultCacheTest, ShardedCacheBehavesLikeUnsharded) {
  ResultCache cache(16, /*shards=*/4);
  EXPECT_EQ(cache.shards(), 4u);
  std::string payload;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_FALSE(cache.Lookup(key, &payload));
    cache.Insert(key, "v" + std::to_string(i));
    ASSERT_TRUE(cache.Lookup(key, &payload));
    EXPECT_EQ(payload, "v" + std::to_string(i));
  }
  EXPECT_EQ(cache.hits(), 12u);
  EXPECT_EQ(cache.misses(), 12u);
  // Aggregate counters are exactly the sum over the shard views.
  ResultCache::ShardStats totals;
  for (size_t shard = 0; shard < cache.shards(); ++shard) {
    const ResultCache::ShardStats stats = cache.shard_stats(shard);
    totals.size += stats.size;
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.evictions += stats.evictions;
  }
  EXPECT_EQ(totals.size, cache.size());
  EXPECT_EQ(totals.hits, cache.hits());
  EXPECT_EQ(totals.misses, cache.misses());
  EXPECT_EQ(totals.evictions, cache.evictions());
}

TEST(ResultCacheTest, ShardedConcurrentHammer) {
  // 8 threads × shared + private keys: exercised under TSan in CI. The
  // striped locks must keep every counter exact and every payload
  // uncorrupted.
  ResultCache cache(256, /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> observed_hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      std::string payload;
      for (int i = 0; i < kIters; ++i) {
        const std::string shared = "shared-" + std::to_string(i % 16);
        const std::string mine =
            "private-" + std::to_string(t) + "-" + std::to_string(i % 8);
        cache.Insert(shared, shared);
        cache.Insert(mine, mine);
        if (cache.Lookup(shared, &payload)) {
          observed_hits.fetch_add(1);
          EXPECT_EQ(payload, shared);
        }
        if (cache.Lookup(mine, &payload)) {
          observed_hits.fetch_add(1);
          EXPECT_EQ(payload, mine);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(2 * kThreads * kIters));
  EXPECT_EQ(cache.hits(), observed_hits.load());
  uint64_t shard_sizes = 0;
  for (size_t shard = 0; shard < cache.shards(); ++shard) {
    shard_sizes += cache.shard_stats(shard).size;
  }
  EXPECT_EQ(shard_sizes, cache.size());
}

TEST(SessionRegistryTest, ShardedConcurrentOpenCloseKeepsExactCap) {
  // The global session cap is enforced with a CAS across shards: no
  // interleaving may ever admit more than max_sessions at once.
  SessionRegistry registry(16, 0.0, /*shards=*/4);
  EXPECT_EQ(registry.shards(), 4u);
  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::atomic<uint64_t> opened{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &opened, &rejected] {
      std::vector<std::string> mine;
      for (int i = 0; i < kIters; ++i) {
        auto session = registry.Open(Schema({"a", "b"}), FdxOptions{});
        if (session.ok()) {
          opened.fetch_add(1);
          EXPECT_LE(registry.size(), 16u);
          mine.push_back((*session)->id);
          if (mine.size() >= 2) {
            EXPECT_TRUE(registry.Close(mine.back()));
            mine.pop_back();
          }
        } else {
          EXPECT_EQ(session.status().code(), StatusCode::kUnavailable);
          rejected.fetch_add(1);
          if (!mine.empty()) {
            EXPECT_TRUE(registry.Close(mine.back()));
            mine.pop_back();
          }
        }
      }
      for (const std::string& id : mine) EXPECT_TRUE(registry.Close(id));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.opened(), opened.load());
  EXPECT_EQ(opened.load() + rejected.load(),
            static_cast<uint64_t>(kThreads * kIters));
}

// ------------------------------------------------- Status text report

TEST(StatusTextReportTest, RendersCountersAndShards) {
  const std::string status = R"({
    "ok": true, "op": "status", "uptime_seconds": 12.5,
    "connections": 7, "requests": 42,
    "requests_by_op": {"open": 2, "append": 3, "discover": 30,
                       "status": 5, "sleep": 0, "shutdown": 0, "invalid": 2},
    "accept_faults": 0,
    "io": {"mode": "epoll", "io_threads": 2, "connections_live": 3,
           "max_pipeline_depth": 1024, "accept_transient_errors": 1},
    "queue": {"workers": 2, "capacity": 8, "active": 1,
              "executed": 29, "rejected": 4},
    "cache": {"size": 5, "capacity": 64, "hits": 11, "misses": 18,
              "evictions": 0,
              "shards": [{"size": 2, "hits": 6, "misses": 9, "evictions": 0},
                         {"size": 3, "hits": 5, "misses": 9, "evictions": 0}]},
    "sessions": {"open": 2, "max": 32, "shards": 8, "opened": 2,
                 "evicted": 0},
    "solver": {"solves": 18, "warm_started": 4, "memo_hits": 2}
  })";
  auto parsed = JsonValue::Parse(status);
  ASSERT_TRUE(parsed.ok());
  const std::string report = RenderStatusTextReport(parsed.value());

  EXPECT_NE(report.find("mode=epoll"), std::string::npos) << report;
  EXPECT_NE(report.find("io_threads=2"), std::string::npos) << report;
  EXPECT_NE(report.find("connections_live=3"), std::string::npos) << report;
  EXPECT_NE(report.find("accept_transient_errors=1"), std::string::npos);
  EXPECT_NE(report.find("discover=30"), std::string::npos) << report;
  EXPECT_NE(report.find("invalid=2"), std::string::npos) << report;
  EXPECT_NE(report.find("depth=1"), std::string::npos) << report;
  EXPECT_NE(report.find("hits=11"), std::string::npos) << report;
  EXPECT_NE(report.find("shard[0]"), std::string::npos) << report;
  EXPECT_NE(report.find("shard[1]"), std::string::npos) << report;
  EXPECT_NE(report.find("warm_started=4"), std::string::npos) << report;
}

TEST(StatusTextReportTest, MissingMembersRenderAsZeros) {
  // A minimal status from an older daemon must still render (zeros, no
  // shard lines) instead of crashing or printing garbage.
  auto parsed = JsonValue::Parse(R"({"ok": true, "op": "status"})");
  ASSERT_TRUE(parsed.ok());
  const std::string report = RenderStatusTextReport(parsed.value());
  EXPECT_NE(report.find("total=0"), std::string::npos) << report;
  EXPECT_EQ(report.find("shard["), std::string::npos) << report;
}

}  // namespace
}  // namespace fdx
