#include <gtest/gtest.h>

#include "data/csv.h"
#include "fd/validation.h"
#include "synth/generator.h"

namespace fdx {
namespace {

EncodedTable EncodeCsv(const std::string& text, Table* out = nullptr) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  if (out != nullptr) *out = *t;
  return EncodedTable::Encode(*t);
}

TEST(ValidationTest, CleanFdHasNoViolations) {
  EncodedTable e = EncodeCsv("x,y\n1,a\n1,a\n2,b\n2,b\n");
  auto report = ValidateFd(e, FunctionalDependency({0}, 1));
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->g3_error, 0.0);
  EXPECT_EQ(report->groups, 2u);
  EXPECT_EQ(report->violating_groups, 0u);
  EXPECT_TRUE(report->violations.empty());
}

TEST(ValidationTest, DetectsViolatingGroup) {
  EncodedTable e = EncodeCsv("x,y\n1,a\n1,a\n1,b\n2,c\n");
  auto report = ValidateFd(e, FunctionalDependency({0}, 1));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violating_groups, 1u);
  ASSERT_EQ(report->violations.size(), 1u);
  const FdViolation& violation = report->violations[0];
  EXPECT_EQ(violation.rows.size(), 3u);
  ASSERT_EQ(violation.deviating_rows.size(), 1u);
  EXPECT_EQ(violation.deviating_rows[0], 2u);  // the 'b' row
  EXPECT_NEAR(report->g3_error, 0.25, 1e-12);
}

TEST(ValidationTest, G3MatchesFdG3Error) {
  SyntheticConfig config;
  config.num_tuples = 600;
  config.num_attributes = 6;
  config.noise_rate = 0.15;
  config.seed = 9;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable e = EncodedTable::Encode(ds->noisy);
  for (const auto& fd : ds->true_fds) {
    auto report = ValidateFd(e, fd);
    ASSERT_TRUE(report.ok());
    EXPECT_NEAR(report->g3_error, FdG3Error(e, fd), 1e-12);
  }
}

TEST(ValidationTest, NullCellsExcluded) {
  EncodedTable e = EncodeCsv("x,y\n1,a\n1,\n,b\n1,a\n");
  auto report = ValidateFd(e, FunctionalDependency({0}, 1));
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->g3_error, 0.0);  // only the two (1, a) rows count
}

TEST(ValidationTest, ViolationCapRespected) {
  Table t{Schema({"x", "y"})};
  for (int g = 0; g < 50; ++g) {
    t.AppendRow({Value(int64_t{g}), Value(int64_t{0})});
    t.AppendRow({Value(int64_t{g}), Value(int64_t{1})});
  }
  EncodedTable e = EncodedTable::Encode(t);
  ValidationOptions options;
  options.max_violations = 5;
  auto report = ValidateFd(e, FunctionalDependency({0}, 1), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violating_groups, 50u);  // counts are exact
  EXPECT_EQ(report->violations.size(), 5u);  // materialization capped
}

TEST(ValidationTest, RejectsOutOfRangeFd) {
  EncodedTable e = EncodeCsv("x,y\n1,a\n");
  EXPECT_FALSE(ValidateFd(e, FunctionalDependency({0}, 9)).ok());
  EXPECT_FALSE(ValidateFd(e, FunctionalDependency({9}, 1)).ok());
}

TEST(ValidationTest, ValidateFdsCoversSet) {
  EncodedTable e = EncodeCsv("x,y,z\n1,a,p\n1,a,q\n2,b,p\n");
  FdSet fds = {FunctionalDependency({0}, 1), FunctionalDependency({0}, 2)};
  auto reports = ValidateFds(e, fds);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_DOUBLE_EQ((*reports)[0].g3_error, 0.0);
  EXPECT_GT((*reports)[1].g3_error, 0.0);  // z varies within x=1
}

TEST(RepairTest, SuggestsMajorityRepairs) {
  Table t;
  EncodedTable e = EncodeCsv("x,y\n1,a\n1,a\n1,b\n2,c\n", &t);
  auto repairs = SuggestRepairs(e, FunctionalDependency({0}, 1));
  ASSERT_TRUE(repairs.ok());
  ASSERT_EQ(repairs->size(), 1u);
  EXPECT_EQ((*repairs)[0].row, 2u);
  EXPECT_EQ((*repairs)[0].column, 1u);
  // Donor carries the majority value 'a'.
  EXPECT_EQ(t.cell((*repairs)[0].donor_row, 1).AsString(), "a");
}

TEST(RepairTest, ApplyRepairsFixesViolations) {
  Table t;
  EncodedTable e = EncodeCsv("x,y\n1,a\n1,b\n1,a\n2,c\n2,c\n2,d\n", &t);
  const FunctionalDependency fd({0}, 1);
  auto repairs = SuggestRepairs(e, fd);
  ASSERT_TRUE(repairs.ok());
  Table repaired = ApplyRepairs(t, *repairs);
  EncodedTable re = EncodedTable::Encode(repaired);
  EXPECT_TRUE(FdHoldsExactly(re, fd));
  // Untouched cells stay untouched.
  EXPECT_EQ(repaired.cell(0, 1).AsString(), "a");
  EXPECT_EQ(repaired.cell(3, 1).AsString(), "c");
}

TEST(RepairTest, RepairRestoresPlantedCleanData) {
  // End-to-end: corrupt clean data, repair with the true FD, recover
  // most of the corrupted cells.
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 6;
  config.noise_rate = 0.0;
  config.seed = 31;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  ASSERT_FALSE(ds->true_fds.empty());
  const FunctionalDependency& fd = ds->true_fds[0];
  Rng rng(32);
  Table corrupted = FlipCells(ds->clean, {fd.rhs}, 0.1, &rng);
  EncodedTable e = EncodedTable::Encode(corrupted);
  const double error_before = FdG3Error(e, fd);
  ASSERT_GT(error_before, 0.0);
  ValidationOptions options;
  options.max_violations = 0;  // materialize everything
  auto repairs = SuggestRepairs(e, fd, options);
  ASSERT_TRUE(repairs.ok());
  Table repaired = ApplyRepairs(corrupted, *repairs);
  const double error_after =
      FdG3Error(EncodedTable::Encode(repaired), fd);
  EXPECT_LT(error_after, 0.2 * error_before);
}

}  // namespace
}  // namespace fdx
