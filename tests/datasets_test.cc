#include <gtest/gtest.h>

#include "datasets/real_world.h"
#include "fd/fd.h"

namespace fdx {
namespace {

struct DatasetSpec {
  const char* name;
  size_t rows;
  size_t columns;
  bool exact_rows;
};

class DatasetShapeTest : public ::testing::TestWithParam<DatasetSpec> {};

RealWorldDataset MakeByName(const std::string& name) {
  if (name == "Australian") return MakeAustralianDataset();
  if (name == "Hospital") return MakeHospitalDataset();
  if (name == "Mammographic") return MakeMammographicDataset();
  if (name == "NYPD") return MakeNypdDataset();
  if (name == "Thoracic") return MakeThoracicDataset();
  return MakeTicTacToeDataset();
}

TEST_P(DatasetShapeTest, MatchesPaperTable3) {
  const DatasetSpec& spec = GetParam();
  RealWorldDataset ds = MakeByName(spec.name);
  EXPECT_EQ(ds.name, spec.name);
  if (spec.exact_rows) {
    EXPECT_EQ(ds.table.num_rows(), spec.rows);
  } else {
    // Tic-Tac-Toe enumerates terminal boards; allow a small shortfall.
    EXPECT_GE(ds.table.num_rows(), spec.rows * 9 / 10);
    EXPECT_LE(ds.table.num_rows(), spec.rows);
  }
  EXPECT_EQ(ds.table.num_columns(), spec.columns);
  EXPECT_FALSE(ds.embedded_fds.empty());
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, DatasetShapeTest,
    ::testing::Values(DatasetSpec{"Australian", 690, 15, true},
                      DatasetSpec{"Hospital", 1000, 17, true},
                      DatasetSpec{"Mammographic", 830, 6, true},
                      DatasetSpec{"NYPD", 34382, 17, true},
                      DatasetSpec{"Thoracic", 470, 17, true},
                      DatasetSpec{"Tic-Tac-Toe", 958, 10, false}),
    [](const auto& info) {
      std::string name = info.param.name;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(DatasetsTest, EmbeddedFdsApproximatelyHold) {
  for (const auto& maker :
       {MakeHospitalDataset, MakeMammographicDataset, MakeNypdDataset}) {
    RealWorldDataset ds = maker(101);
    EncodedTable encoded = EncodedTable::Encode(ds.table);
    for (const auto& fd : ds.embedded_fds) {
      EXPECT_LT(FdG3Error(encoded, fd), 0.08)
          << ds.name << ": " << fd.ToString(ds.table.schema());
    }
  }
}

TEST(DatasetsTest, HospitalHasMissingValuesAndSkewedState) {
  RealWorldDataset ds = MakeHospitalDataset();
  size_t nulls = 0;
  for (size_t c = 0; c < ds.table.num_columns(); ++c) {
    for (size_t r = 0; r < ds.table.num_rows(); ++r) {
      if (ds.table.cell(r, c).is_null()) ++nulls;
    }
  }
  EXPECT_GT(nulls, 100u);  // ~2% of 17k cells
  // The State column is ~89% one value (paper §5.4's explanation of why
  // FDX leaves State unconnected).
  const int state = ds.table.schema().Find("State");
  ASSERT_GE(state, 0);
  size_t al = 0, non_null = 0;
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    const Value& v = ds.table.cell(r, static_cast<size_t>(state));
    if (v.is_null()) continue;
    ++non_null;
    if (v.ToString() == "AL") ++al;
  }
  const double fraction =
      static_cast<double>(al) / static_cast<double>(non_null);
  EXPECT_GT(fraction, 0.8);
  EXPECT_LT(fraction, 0.96);
}

TEST(DatasetsTest, TicTacToeClassIsFunctionOfBoard) {
  RealWorldDataset ds = MakeTicTacToeDataset();
  EncodedTable encoded = EncodedTable::Encode(ds.table);
  std::vector<size_t> board;
  for (size_t i = 0; i < 9; ++i) board.push_back(i);
  EXPECT_TRUE(FdHoldsExactly(encoded, FunctionalDependency(board, 9)));
  // But no single square determines the outcome.
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_FALSE(FdHoldsExactly(encoded, FunctionalDependency({i}, 9)));
  }
}

TEST(DatasetsTest, DeterministicForSeed) {
  RealWorldDataset a = MakeMammographicDataset(77);
  RealWorldDataset b = MakeMammographicDataset(77);
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (size_t r = 0; r < a.table.num_rows(); ++r) {
    for (size_t c = 0; c < a.table.num_columns(); ++c) {
      const Value& va = a.table.cell(r, c);
      const Value& vb = b.table.cell(r, c);
      EXPECT_EQ(va.is_null(), vb.is_null());
      if (!va.is_null()) {
        EXPECT_TRUE(va.EqualsStrict(vb));
      }
    }
  }
}

TEST(DatasetsTest, MakeAllReturnsSixInPaperOrder) {
  auto all = MakeAllRealWorldDatasets();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "Australian");
  EXPECT_EQ(all[5].name, "Tic-Tac-Toe");
}

}  // namespace
}  // namespace fdx
