// End-to-end tests of the fdxd service stack: a real FdxServer on an
// ephemeral loopback port, spoken to over real sockets with the
// line-delimited JSON protocol. In-process (not via the binaries) so
// the tests can assert on server counters directly and run under TSan.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/json_parser.h"
#include "service/server.h"
#include "util/fault_injection.h"
#include "util/json_writer.h"
#include "util/socket.h"
#include "util/stopwatch.h"

namespace fdx {
namespace {

/// One-shot request: connect, send one line, read one line.
Result<std::string> Request(uint16_t port, const std::string& line) {
  FDX_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectLoopback(port));
  FDX_RETURN_IF_ERROR(sock.SendAll(line + "\n"));
  std::string response;
  FDX_RETURN_IF_ERROR(sock.ReadLine(&response));
  return response;
}

/// Spins until `pred` holds (tests gate on server counters, not sleeps).
bool WaitFor(const std::function<bool()>& pred, double seconds = 10.0) {
  Stopwatch watch;
  while (!pred()) {
    if (watch.ElapsedSeconds() > seconds) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// `[[i%m, 2*(i%m), i%3], ...]` — a planted a->b FD with repeats so the
/// pair transform sees plenty of equal cells.
std::string RowsJson(int rows, int modulus) {
  std::string json = "[";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) json += ",";
    const int a = i % modulus;
    json += "[" + std::to_string(a) + "," + std::to_string(2 * a) + "," +
            std::to_string(i % 3) + "]";
  }
  return json + "]";
}

std::string DiscoverTableRequest(int rows, int modulus) {
  return R"({"op":"discover","table":{"schema":["a","b","c"],"rows":)" +
         RowsJson(rows, modulus) + "}}";
}

bool IsOk(const std::string& response) {
  auto parsed = JsonValue::Parse(response);
  return parsed.ok() && parsed->BoolOr("ok", false);
}

std::string ErrorCode(const std::string& response) {
  auto parsed = JsonValue::Parse(response);
  if (!parsed.ok()) return "<unparseable>";
  const JsonValue* error = parsed->Find("error");
  return error == nullptr ? "<no error>" : error->StringOr("code", "");
}

class ServiceIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmFaults(); }

  /// Starts a server with the given knobs; registers it for teardown.
  FdxServer& StartServer(ServerOptions options) {
    options.port = 0;
    servers_.push_back(std::make_unique<FdxServer>(std::move(options)));
    auto status = servers_.back()->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return *servers_.back();
  }

  std::vector<std::unique_ptr<FdxServer>> servers_;
};

TEST_F(ServiceIntegrationTest, SessionLifecycleWithCachedDiscover) {
  FdxServer& server = StartServer(ServerOptions{});

  auto open = Request(server.port(),
                      R"({"op":"open","schema":["a","b","c"]})");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(IsOk(*open)) << *open;
  const std::string session =
      JsonValue::Parse(*open)->StringOr("session", "");
  EXPECT_EQ(session, "s-1");

  auto append = Request(server.port(),
                        R"({"op":"append","session":"s-1","rows":)" +
                            RowsJson(24, 5) + "}");
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(IsOk(*append)) << *append;
  EXPECT_DOUBLE_EQ(JsonValue::Parse(*append)->NumberOr("total_rows", 0), 24);

  const std::string discover = R"({"op":"discover","session":"s-1"})";
  auto cold = Request(server.port(), discover);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(IsOk(*cold)) << *cold;
  EXPECT_EQ(server.cache().hits(), 0u);

  // Second discover: byte-identical replay out of the cache, no new job.
  auto cached = Request(server.port(), discover);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cold, *cached);
  EXPECT_EQ(server.cache().hits(), 1u);
  EXPECT_TRUE(WaitFor([&] { return server.queue().executed() == 1u; }));

  // Appending invalidates the fingerprint -> next discover recomputes.
  ASSERT_TRUE(Request(server.port(),
                      R"({"op":"append","session":"s-1","rows":)" +
                          RowsJson(24, 5) + "}")
                  .ok());
  auto after_append = Request(server.port(), discover);
  ASSERT_TRUE(after_append.ok());
  ASSERT_TRUE(IsOk(*after_append)) << *after_append;
  // The response is posted from inside the job body, so the executed
  // counter can lag the client's read of the response by an instant.
  EXPECT_TRUE(WaitFor([&] { return server.queue().executed() == 2u; }));
}

TEST_F(ServiceIntegrationTest, StatusReportsSolverCounters) {
  FdxServer& server = StartServer(ServerOptions{});

  auto open = Request(server.port(),
                      R"({"op":"open","schema":["a","b","c"]})");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(IsOk(*open)) << *open;

  // Cold solve, then append + re-discover: the second solve warm-starts
  // from the first and both land in the status counters.
  ASSERT_TRUE(Request(server.port(),
                      R"({"op":"append","session":"s-1","rows":)" +
                          RowsJson(24, 5) + "}")
                  .ok());
  auto cold = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(IsOk(*cold)) << *cold;
  ASSERT_TRUE(Request(server.port(),
                      R"({"op":"append","session":"s-1","rows":)" +
                          RowsJson(24, 5) + "}")
                  .ok());
  auto warm = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(IsOk(*warm)) << *warm;

  auto status = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(IsOk(*status)) << *status;
  auto parsed = JsonValue::Parse(*status);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* solver = parsed->Find("solver");
  ASSERT_NE(solver, nullptr) << *status;
  EXPECT_DOUBLE_EQ(solver->NumberOr("solves", -1), 2);
  EXPECT_DOUBLE_EQ(solver->NumberOr("warm_started", -1), 1);
  EXPECT_DOUBLE_EQ(solver->NumberOr("memo_hits", -1), 0);
}

TEST_F(ServiceIntegrationTest, CsvAndInlineTableShareTheCache) {
  FdxServer& server = StartServer(ServerOptions{});

  // Same relation shipped two ways: inline CSV (with header) and a JSON
  // table. Cells normalize identically, so the second form must hit the
  // first one's cache entry and return the exact same bytes.
  std::string csv = "a,b,c\n";
  for (int i = 0; i < 24; ++i) {
    const int a = i % 5;
    csv += std::to_string(a) + "," + std::to_string(2 * a) + "," +
           std::to_string(i % 3) + "\n";
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("op");
  writer.String("discover");
  writer.Key("csv");
  writer.String(csv);
  writer.EndObject();
  auto via_csv = Request(server.port(), writer.TakeString());
  ASSERT_TRUE(via_csv.ok());
  ASSERT_TRUE(IsOk(*via_csv)) << *via_csv;

  auto via_table = Request(server.port(), DiscoverTableRequest(24, 5));
  ASSERT_TRUE(via_table.ok());
  EXPECT_EQ(*via_csv, *via_table);
  EXPECT_EQ(server.cache().hits(), 1u);
  EXPECT_TRUE(WaitFor([&] { return server.queue().executed() == 1u; }));
}

TEST_F(ServiceIntegrationTest, CachedResponseMatchesColdServerByteForByte) {
  // A cache hit must be indistinguishable from a fresh computation —
  // including across daemon restarts (nothing wall-clock or stateful
  // may leak into the payload).
  FdxServer& warm = StartServer(ServerOptions{});
  auto first = Request(warm.port(), DiscoverTableRequest(30, 4));
  auto second = Request(warm.port(), DiscoverTableRequest(30, 4));
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(IsOk(*first)) << *first;
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(warm.cache().hits(), 1u);

  FdxServer& cold = StartServer(ServerOptions{});
  auto fresh = Request(cold.port(), DiscoverTableRequest(30, 4));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*first, *fresh);
}

TEST_F(ServiceIntegrationTest, EightConcurrentClients) {
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 16;
  FdxServer& server = StartServer(options);

  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &responses, i] {
      // Distinct modulus per client -> distinct tables -> no cache
      // collisions; every request is a real discovery job.
      auto response =
          Request(server.port(), DiscoverTableRequest(40, 3 + i));
      responses[i] = response.ok() ? *response : response.status().ToString();
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(IsOk(responses[i])) << "client " << i << ": " << responses[i];
  }
  // The executed counter increments after the response is written, so a
  // client can observe its reply before the bookkeeping lands.
  EXPECT_TRUE(WaitFor([&server] {
    return server.queue().executed() == static_cast<uint64_t>(kClients);
  }));
  EXPECT_EQ(server.queue().rejected(), 0u);
  EXPECT_EQ(server.connections(), static_cast<uint64_t>(kClients));
}

TEST_F(ServiceIntegrationTest, FullQueueReturnsStructuredBackpressure) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.enable_debug_ops = true;
  FdxServer& server = StartServer(options);

  // Deterministically fill the queue: one sleep running, one admitted.
  const std::string sleep_request = R"({"op":"sleep","seconds":1.0})";
  std::vector<std::thread> sleepers;
  std::vector<std::string> sleep_responses(2);
  for (int i = 0; i < 2; ++i) {
    sleepers.emplace_back([&server, &sleep_responses, i, &sleep_request] {
      auto response = Request(server.port(), sleep_request);
      sleep_responses[i] =
          response.ok() ? *response : response.status().ToString();
    });
  }
  ASSERT_TRUE(WaitFor([&server] { return server.queue().active() == 2; }));

  // Third job on a live connection: structured 429, connection survives.
  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendAll(R"({"op":"sleep","seconds":0.01})"
                            "\n")
                  .ok());
  std::string rejected;
  ASSERT_TRUE(sock->ReadLine(&rejected).ok());
  EXPECT_FALSE(IsOk(rejected)) << rejected;
  EXPECT_EQ(ErrorCode(rejected), "Unavailable");
  EXPECT_TRUE(JsonValue::Parse(rejected)->BoolOr("retry", false));
  EXPECT_EQ(server.queue().rejected(), 1u);

  // Same connection keeps working after the rejection.
  ASSERT_TRUE(sock->SendAll("{\"op\":\"status\"}\n").ok());
  std::string status_response;
  ASSERT_TRUE(sock->ReadLine(&status_response).ok());
  EXPECT_TRUE(IsOk(status_response)) << status_response;

  for (auto& t : sleepers) t.join();
  EXPECT_TRUE(IsOk(sleep_responses[0])) << sleep_responses[0];
  EXPECT_TRUE(IsOk(sleep_responses[1])) << sleep_responses[1];
}

TEST_F(ServiceIntegrationTest, ShutdownDrainsInFlightJobs) {
  ServerOptions options;
  options.workers = 1;
  options.enable_debug_ops = true;
  options.drain_seconds = 10.0;
  FdxServer& server = StartServer(options);
  const uint16_t port = server.port();

  std::string slow_response;
  std::thread slow_client([port, &slow_response] {
    auto response = Request(port, R"({"op":"sleep","seconds":0.4})");
    slow_response = response.ok() ? *response : response.status().ToString();
  });
  ASSERT_TRUE(WaitFor([&server] { return server.queue().active() == 1; }));

  auto shutdown = Request(port, R"({"op":"shutdown"})");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_TRUE(IsOk(*shutdown)) << *shutdown;

  server.Wait();  // performs the drain + teardown
  EXPECT_TRUE(server.drained_cleanly());

  // The in-flight sleep finished and its response reached the client.
  slow_client.join();
  EXPECT_TRUE(IsOk(slow_response)) << slow_response;

  // Teardown completed: the queue drained and nothing is left running.
  // (Probing the port would be racy under parallel ctest — a sibling
  // test process can rebind the freed ephemeral port immediately.)
  EXPECT_EQ(server.queue().active(), 0u);
}

TEST_F(ServiceIntegrationTest, AcceptFaultDropsOneConnection) {
  FdxServer& server = StartServer(ServerOptions{});
  ASSERT_TRUE(ArmFaults(std::string(kFaultServiceAccept) + ":1").ok());

  // First connection is dropped by the injected accept fault: the
  // client connects at the TCP level but reads EOF.
  auto dropped = Request(server.port(), R"({"op":"status"})");
  EXPECT_FALSE(dropped.ok());
  ASSERT_TRUE(WaitFor([&server] { return server.accept_faults() == 1; }));

  // The daemon shrugged it off; the next connection works.
  auto healthy = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(IsOk(*healthy)) << *healthy;
}

TEST_F(ServiceIntegrationTest, EnqueueFaultSurfacesAsInternalError) {
  FdxServer& server = StartServer(ServerOptions{});
  ASSERT_TRUE(ArmFaults(std::string(kFaultServiceEnqueue) + ":1").ok());

  auto faulted = Request(server.port(), DiscoverTableRequest(20, 4));
  ASSERT_TRUE(faulted.ok());
  EXPECT_FALSE(IsOk(*faulted)) << *faulted;
  EXPECT_EQ(ErrorCode(*faulted), "Internal");

  DisarmFaults();
  auto healthy = Request(server.port(), DiscoverTableRequest(20, 4));
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(IsOk(*healthy)) << *healthy;
}

TEST_F(ServiceIntegrationTest, SessionErrorPaths) {
  ServerOptions options;
  options.max_sessions = 1;
  FdxServer& server = StartServer(options);

  auto unknown = Request(server.port(),
                         R"({"op":"discover","session":"s-404"})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(ErrorCode(*unknown), "NotFound");

  auto dup_schema = Request(server.port(),
                            R"({"op":"open","schema":["a","a"]})");
  ASSERT_TRUE(dup_schema.ok());
  EXPECT_EQ(ErrorCode(*dup_schema), "InvalidArgument");

  auto open = Request(server.port(), R"({"op":"open","schema":["a","b"]})");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(IsOk(*open)) << *open;

  // Capacity: a second session is refused with the retry hint.
  auto over_cap = Request(server.port(), R"({"op":"open","schema":["x"]})");
  ASSERT_TRUE(over_cap.ok());
  EXPECT_EQ(ErrorCode(*over_cap), "Unavailable");
  EXPECT_TRUE(JsonValue::Parse(*over_cap)->BoolOr("retry", false));

  // Width mismatch against the session schema.
  auto bad_width = Request(
      server.port(), R"({"op":"append","session":"s-1","rows":[[1],[2]]})");
  ASSERT_TRUE(bad_width.ok());
  EXPECT_EQ(ErrorCode(*bad_width), "InvalidArgument");

  // Per-request options are rejected on session discovers.
  auto opts = Request(
      server.port(),
      R"({"op":"discover","session":"s-1","options":{"lambda":0.1}})");
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(ErrorCode(*opts), "InvalidArgument");

  // Sub-2-row append is refused by IncrementalFdx.
  auto tiny = Request(server.port(),
                      R"({"op":"append","session":"s-1","rows":[[1,2]]})");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(ErrorCode(*tiny), "InvalidArgument");
}

TEST_F(ServiceIntegrationTest, SessionTtlEvictionOverTheWire) {
  ServerOptions options;
  options.session_ttl_seconds = 0.05;
  FdxServer& server = StartServer(options);

  auto open = Request(server.port(), R"({"op":"open","schema":["a","b"]})");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(IsOk(*open)) << *open;

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto expired = Request(server.port(),
                         R"({"op":"append","session":"s-1","rows":)" +
                             RowsJson(4, 2) + "}");
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(ErrorCode(*expired), "NotFound");
  EXPECT_EQ(server.sessions().evicted(), 1u);
}

TEST_F(ServiceIntegrationTest, MalformedRequestsKeepTheConnectionAlive) {
  FdxServer& server = StartServer(ServerOptions{});
  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());

  const std::vector<std::string> bad_lines = {
      "this is not json",
      "{\"no\":\"op\"}",
      "{\"op\":\"frobnicate\"}",
      "{\"op\":\"sleep\"}",  // debug op while debug ops are disabled
  };
  for (const std::string& line : bad_lines) {
    ASSERT_TRUE(sock->SendAll(line + "\n").ok());
    std::string response;
    ASSERT_TRUE(sock->ReadLine(&response).ok()) << line;
    EXPECT_FALSE(IsOk(response)) << line << " -> " << response;
  }
  // Still alive after four bad requests.
  ASSERT_TRUE(sock->SendAll("{\"op\":\"status\"}\n").ok());
  std::string response;
  ASSERT_TRUE(sock->ReadLine(&response).ok());
  EXPECT_TRUE(IsOk(response)) << response;
}

TEST_F(ServiceIntegrationTest, DiscoverHonorsRequestOptions) {
  FdxServer& server = StartServer(ServerOptions{});

  // A microscopic time budget must produce a structured Timeout, and
  // distinct options must produce distinct cache entries.
  const std::string base = DiscoverTableRequest(40, 5);
  std::string with_budget = base;
  with_budget.insert(with_budget.size() - 1,
                     R"(,"options":{"time_budget_seconds":1e-9})");
  auto timed_out = Request(server.port(), with_budget);
  ASSERT_TRUE(timed_out.ok());
  EXPECT_EQ(ErrorCode(*timed_out), "Timeout") << *timed_out;

  auto fine = Request(server.port(), base);
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(IsOk(*fine)) << *fine;

  std::string with_seed = base;
  with_seed.insert(with_seed.size() - 1, R"(,"options":{"seed":9})");
  auto seeded = Request(server.port(), with_seed);
  ASSERT_TRUE(seeded.ok());
  EXPECT_TRUE(IsOk(*seeded)) << *seeded;
  // seed is part of the canonical key: no false cache hit.
  EXPECT_EQ(server.cache().hits(), 0u);
}

TEST_F(ServiceIntegrationTest, PipelinedRequestsAnswerInOrder) {
  ServerOptions options;
  options.enable_debug_ops = true;
  FdxServer& server = StartServer(options);

  // One write carrying six frames: a slow job first, then fast inline
  // ops and distinguishable discovers. Responses must come back in
  // request order even though the later requests finish first on the
  // worker side — per-connection execution is serial by contract.
  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());
  const std::string batch = std::string(R"({"op":"sleep","seconds":0.2})") +
                            "\n" + R"({"op":"status"})" + "\n" +
                            DiscoverTableRequest(10, 5) + "\n" +
                            DiscoverTableRequest(12, 5) + "\n" +
                            DiscoverTableRequest(14, 5) + "\n" +
                            R"({"op":"status"})" + "\n";
  ASSERT_TRUE(sock->SendAll(batch).ok());

  const std::vector<std::string> expected_ops = {
      "sleep", "status", "discover", "discover", "discover", "status"};
  const std::vector<double> expected_rows = {0, 0, 10, 12, 14, 0};
  for (size_t i = 0; i < expected_ops.size(); ++i) {
    std::string response;
    ASSERT_TRUE(sock->ReadLine(&response).ok()) << "response " << i;
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    EXPECT_TRUE(parsed->BoolOr("ok", false)) << response;
    EXPECT_EQ(parsed->StringOr("op", ""), expected_ops[i]) << response;
    if (expected_rows[i] > 0) {
      EXPECT_DOUBLE_EQ(parsed->NumberOr("rows", 0), expected_rows[i])
          << response;
    }
  }
}

TEST_F(ServiceIntegrationTest, BurstBeyondPipelineDepthAnswersEverything) {
  // Regression: a single burst of more synchronously-answered requests
  // than max_pipeline_depth used to hang — the loop read-paused at
  // depth, and the frames extracted by Pump's un-pause tail were never
  // dispatched (the kernel buffer was already drained, so no further
  // EPOLLIN arrived to pick them up).
  ServerOptions options;
  options.max_pipeline_depth = 8;
  FdxServer& server = StartServer(options);

  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());
  constexpr int kBurst = 64;
  std::string batch;
  for (int i = 0; i < kBurst; ++i) batch += "{\"op\":\"status\"}\n";
  ASSERT_TRUE(sock->SendAll(batch).ok());
  for (int i = 0; i < kBurst; ++i) {
    std::string response;
    ASSERT_TRUE(sock->ReadLine(&response).ok()) << "response " << i;
    EXPECT_TRUE(IsOk(response)) << response;
  }
  EXPECT_EQ(server.requests(), static_cast<uint64_t>(kBurst));
}

TEST_F(ServiceIntegrationTest, PipelineDepthOneStillServesFollowOnRequests) {
  // Regression: with depth 1 the resume threshold depth/2 == 0 was
  // never satisfied, so every connection stayed read-paused after its
  // first request.
  ServerOptions options;
  options.max_pipeline_depth = 1;
  FdxServer& server = StartServer(options);

  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());
  // Both shapes must work: a pipelined pair in one write, and a fresh
  // request sent after the first responses were consumed.
  ASSERT_TRUE(
      sock->SendAll("{\"op\":\"status\"}\n{\"op\":\"status\"}\n").ok());
  for (int i = 0; i < 2; ++i) {
    std::string response;
    ASSERT_TRUE(sock->ReadLine(&response).ok()) << "response " << i;
    EXPECT_TRUE(IsOk(response)) << response;
  }
  ASSERT_TRUE(sock->SendAll(DiscoverTableRequest(10, 5) + "\n").ok());
  std::string response;
  ASSERT_TRUE(sock->ReadLine(&response).ok());
  EXPECT_TRUE(IsOk(response)) << response;
}

TEST_F(ServiceIntegrationTest, PartialFramesAndSlowWriterParseCorrectly) {
  FdxServer& server = StartServer(ServerOptions{});

  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());

  // A frame dribbled in five writes with pauses: the incremental parser
  // must buffer the partial line without dispatching anything.
  const std::string request = R"({"op":"status"})";
  for (size_t off = 0; off < request.size(); off += 4) {
    ASSERT_TRUE(sock->SendAll(request.substr(off, 4)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.requests(), 0u);  // no terminator yet: nothing ran
  ASSERT_TRUE(sock->SendAll("\n").ok());
  std::string response;
  ASSERT_TRUE(sock->ReadLine(&response).ok());
  EXPECT_TRUE(IsOk(response)) << response;

  // CRLF framing, blank keep-alive lines, and a frame split exactly at
  // the boundary between two pipelined requests.
  ASSERT_TRUE(sock->SendAll("\r\n\n{\"op\":\"status\"}\r\n{\"op\":").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(sock->SendAll("\"status\"}\n").ok());
  for (int i = 0; i < 2; ++i) {
    std::string line;
    ASSERT_TRUE(sock->ReadLine(&line).ok()) << "response " << i;
    EXPECT_TRUE(IsOk(line)) << line;
  }
}

TEST_F(ServiceIntegrationTest, StatusExposesIoAndShardObservability) {
  ServerOptions options;
  options.cache_shards = 4;
  options.session_shards = 4;
  FdxServer& server = StartServer(options);

  ASSERT_TRUE(
      Request(server.port(), R"({"op":"open","schema":["a","b","c"]})").ok());
  ASSERT_TRUE(Request(server.port(), DiscoverTableRequest(10, 5)).ok());
  ASSERT_TRUE(Request(server.port(), DiscoverTableRequest(10, 5)).ok());

  auto status = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(status.ok());
  auto parsed = JsonValue::Parse(*status);
  ASSERT_TRUE(parsed.ok()) << *status;

  const JsonValue* by_op = parsed->Find("requests_by_op");
  ASSERT_NE(by_op, nullptr) << *status;
  EXPECT_DOUBLE_EQ(by_op->NumberOr("open", 0), 1);
  EXPECT_DOUBLE_EQ(by_op->NumberOr("discover", 0), 2);
  EXPECT_DOUBLE_EQ(by_op->NumberOr("append", -1), 0);

  const JsonValue* io = parsed->Find("io");
  ASSERT_NE(io, nullptr) << *status;
  EXPECT_EQ(io->StringOr("mode", ""), "epoll");
  EXPECT_DOUBLE_EQ(io->NumberOr("io_threads", 0), 1);
  // This status connection itself is live while being served.
  EXPECT_GE(io->NumberOr("connections_live", -1), 1);
  EXPECT_GE(io->NumberOr("accept_transient_errors", -1), 0);

  const JsonValue* queue = parsed->Find("queue");
  ASSERT_NE(queue, nullptr) << *status;
  EXPECT_GE(queue->NumberOr("active", -1), 0);

  const JsonValue* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr) << *status;
  const JsonValue* shards = cache->Find("shards");
  ASSERT_NE(shards, nullptr) << *status;
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->array().size(), 4u);
  double shard_hits = 0;
  double shard_misses = 0;
  for (const JsonValue& shard : shards->array()) {
    shard_hits += shard.NumberOr("hits", 0);
    shard_misses += shard.NumberOr("misses", 0);
  }
  // Per-shard counters must reconcile with the aggregate view.
  EXPECT_DOUBLE_EQ(shard_hits, cache->NumberOr("hits", -1));
  EXPECT_DOUBLE_EQ(shard_misses, cache->NumberOr("misses", -1));
  EXPECT_DOUBLE_EQ(shard_hits, 1);  // the repeated table discover

  const JsonValue* sessions = parsed->Find("sessions");
  ASSERT_NE(sessions, nullptr) << *status;
  EXPECT_DOUBLE_EQ(sessions->NumberOr("shards", 0), 4);
}

TEST_F(ServiceIntegrationTest, LegacyThreadModeStillServes) {
  ServerOptions options;
  options.io_mode = IoMode::kThreadPerConnection;
  FdxServer& server = StartServer(options);

  // Lifecycle smoke on the legacy path (the suite default is epoll, so
  // this is the thread-per-connection regression coverage).
  auto open = Request(server.port(),
                      R"({"op":"open","schema":["a","b","c"]})");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(IsOk(*open)) << *open;
  ASSERT_TRUE(Request(server.port(),
                      R"({"op":"append","session":"s-1","rows":)" +
                          RowsJson(24, 5) + "}")
                  .ok());
  auto cold = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(IsOk(*cold)) << *cold;
  auto cached = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cold, *cached);
  EXPECT_EQ(server.cache().hits(), 1u);

  // Legacy connections also serve pipelined batches in order (the
  // blocking loop reads frames sequentially).
  auto sock = Socket::ConnectLoopback(server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendAll(DiscoverTableRequest(10, 5) + "\n" +
                            DiscoverTableRequest(12, 5) + "\n")
                  .ok());
  for (const double rows : {10.0, 12.0}) {
    std::string line;
    ASSERT_TRUE(sock->ReadLine(&line).ok());
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_DOUBLE_EQ(parsed->NumberOr("rows", 0), rows) << line;
  }

  auto status = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(status.ok());
  auto parsed = JsonValue::Parse(*status);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* io = parsed->Find("io");
  ASSERT_NE(io, nullptr) << *status;
  EXPECT_EQ(io->StringOr("mode", ""), "threads");
}

}  // namespace
}  // namespace fdx
