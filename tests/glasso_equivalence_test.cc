// Equivalence, exactness, and robustness of the decomposed graphical
// lasso (screening + block solves + active-set inner lasso + warm
// starts) against the dense reference solver.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "linalg/glasso.h"
#include "linalg/stats.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fdx {
namespace {

/// Tight tolerances: both solvers iterate to (numerically) the shared
/// fixed point, so path differences between the dense sweep and the
/// decomposed active-set sweep wash out below the comparison threshold.
GlassoOptions TightOptions() {
  GlassoOptions options;
  options.lambda = 0.08;
  options.max_iterations = 500;
  options.tolerance = 1e-9;
  options.lasso_max_iterations = 20000;
  options.lasso_tolerance = 1e-12;
  return options;
}

/// Random correlation matrix from a factor model: dense couplings, SPD
/// by construction.
Matrix RandomCorrelation(size_t k, uint64_t seed) {
  Rng rng(seed);
  const size_t n = 50 * k + 200;
  Matrix samples(n, k);
  Vector factor(n, 0.0);
  for (size_t i = 0; i < n; ++i) factor[i] = rng.NextGaussian();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      samples(i, j) = 0.6 * factor[i] + rng.NextGaussian();
    }
  }
  auto corr = Correlation(samples);
  EXPECT_TRUE(corr.ok());
  return *corr;
}

/// Block-diagonal correlation: within-block coupling rho, exact zeros
/// across blocks.
Matrix BlockCorrelation(size_t k, size_t block, double rho) {
  Matrix s(k, k);
  for (size_t i = 0; i < k; ++i) {
    s(i, i) = 1.0;
    for (size_t j = i + 1; j < k; ++j) {
      if (i / block == j / block) {
        s(i, j) = rho;
        s(j, i) = rho;
      }
    }
  }
  return s;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  return a.Subtract(b).MaxAbs();
}

class GlassoEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmFaults(); }
};

TEST_F(GlassoEquivalenceTest, MatchesReferenceOnRandomDenseProblems) {
  const GlassoOptions options = TightOptions();
  for (size_t k : {2u, 5u, 20u, 50u}) {
    const Matrix s = RandomCorrelation(k, 100 + k);
    auto fast = GraphicalLasso(s, options);
    auto reference = GraphicalLassoReference(s, options);
    ASSERT_TRUE(fast.ok()) << "k=" << k << ": " << fast.status().ToString();
    ASSERT_TRUE(reference.ok()) << "k=" << k;
    EXPECT_LE(MaxAbsDiff(fast->theta, reference->theta), 1e-8) << "k=" << k;
    EXPECT_LE(MaxAbsDiff(fast->w, reference->w), 1e-8) << "k=" << k;
  }
}

TEST_F(GlassoEquivalenceTest, MatchesReferenceOnSparseAndBlockProblems) {
  const GlassoOptions options = TightOptions();
  // Block-diagonal: screening decomposes; reference solves it dense.
  for (size_t k : {20u, 50u}) {
    const Matrix s = BlockCorrelation(k, 5, 0.5);
    auto fast = GraphicalLasso(s, options);
    auto reference = GraphicalLassoReference(s, options);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(fast->stats.components, k / 5);
    EXPECT_LE(MaxAbsDiff(fast->theta, reference->theta), 1e-8) << "k=" << k;
    EXPECT_LE(MaxAbsDiff(fast->w, reference->w), 1e-8) << "k=" << k;
  }
  // Sparse banded couplings: one connected component, so the fast path
  // exercises the swap-to-last block solver at full size.
  Matrix banded(20, 20);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      banded(i, j) = std::pow(0.5, std::fabs(static_cast<double>(i) -
                                             static_cast<double>(j)));
    }
  }
  auto fast = GraphicalLasso(banded, options);
  auto reference = GraphicalLassoReference(banded, options);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(fast->stats.components, 1u);
  EXPECT_LE(MaxAbsDiff(fast->theta, reference->theta), 1e-8);
}

TEST_F(GlassoEquivalenceTest, DisconnectedComponentsGetExactZeros) {
  // Components {0, 2}, {1}, {3, 4}: cross-component entries must be
  // *identically* zero (screening exactness), not merely small.
  Matrix s(5, 5);
  for (size_t i = 0; i < 5; ++i) s(i, i) = 1.0;
  s(0, 2) = s(2, 0) = 0.6;
  s(3, 4) = s(4, 3) = -0.5;
  const GlassoOptions options = TightOptions();
  auto fast = GraphicalLasso(s, options);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->stats.components, 3u);
  EXPECT_EQ(fast->stats.singletons, 1u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      const bool same_component = i == j || (i == 0 && j == 2) ||
                                  (i == 2 && j == 0) ||
                                  (i == 3 && j == 4) || (i == 4 && j == 3);
      if (!same_component) {
        EXPECT_EQ(fast->theta(i, j), 0.0) << i << "," << j;
        EXPECT_EQ(fast->w(i, j), 0.0) << i << "," << j;
      }
    }
  }
  // Singleton closure: w_jj = s_jj + lambda + ridge, theta_jj = 1/w_jj.
  const double w11 = 1.0 + options.lambda + options.diagonal_ridge;
  EXPECT_DOUBLE_EQ(fast->w(1, 1), w11);
  EXPECT_DOUBLE_EQ(fast->theta(1, 1), 1.0 / w11);
  // And the decomposed result still matches the dense reference.
  auto reference = GraphicalLassoReference(s, options);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(MaxAbsDiff(fast->theta, reference->theta), 1e-8);
}

TEST_F(GlassoEquivalenceTest, ScreeningFindsConnectedComponents) {
  // Chain 0-1-2 plus pair 3-4 plus singleton 5; edge strictly above
  // lambda only.
  Matrix s(6, 6);
  for (size_t i = 0; i < 6; ++i) s(i, i) = 1.0;
  s(0, 1) = s(1, 0) = 0.3;
  s(1, 2) = s(2, 1) = -0.3;
  s(3, 4) = s(4, 3) = 0.11;
  s(2, 5) = s(5, 2) = 0.1;  // exactly lambda: NOT an edge (strict >)
  auto components = GlassoScreenComponents(s, 0.1);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(components[1], (std::vector<size_t>{3, 4}));
  EXPECT_EQ(components[2], (std::vector<size_t>{5}));
  // All-independent: k singletons. Fully coupled: one component.
  EXPECT_EQ(GlassoScreenComponents(Matrix::Identity(4), 0.1).size(), 4u);
  Matrix dense(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) dense(i, j) = i == j ? 1.0 : 0.5;
  }
  EXPECT_EQ(GlassoScreenComponents(dense, 0.1).size(), 1u);
}

TEST_F(GlassoEquivalenceTest, SolutionSatisfiesKktConditions) {
  // KKT of max log det T - tr(ST) - lambda ||T||_1 (off-diagonal
  // penalty, FHT diagonal convention W_jj = S_jj + lambda):
  //   theta_ij != 0  =>  w_ij = s_ij + lambda * sign(theta_ij)
  //   theta_ij == 0  =>  |w_ij - s_ij| <= lambda
  GlassoOptions options = TightOptions();
  options.diagonal_ridge = 0.0;
  const Matrix s = RandomCorrelation(20, 7);
  auto fast = GraphicalLasso(s, options);
  ASSERT_TRUE(fast.ok());
  const double lambda = options.lambda;
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(fast->w(i, i), s(i, i) + lambda, 1e-12);
    for (size_t j = 0; j < 20; ++j) {
      if (i == j) continue;
      const double grad = fast->w(i, j) - s(i, j);
      const double theta_ij = fast->theta(i, j);
      if (std::fabs(theta_ij) > 1e-7) {
        EXPECT_NEAR(grad, lambda * (theta_ij > 0 ? 1.0 : -1.0), 1e-6)
            << i << "," << j;
      } else {
        EXPECT_LE(std::fabs(grad), lambda + 1e-6) << i << "," << j;
      }
    }
  }
}

TEST_F(GlassoEquivalenceTest, DeterministicAcrossThreadCounts) {
  // Eight blocks solved in parallel: the assembled result must be
  // bit-identical no matter how many workers executed them.
  const Matrix s = BlockCorrelation(48, 6, 0.45);
  GlassoOptions options = TightOptions();
  options.threads = 1;
  auto reference_run = GraphicalLasso(s, options);
  ASSERT_TRUE(reference_run.ok());
  for (size_t threads : {2u, 8u}) {
    options.threads = threads;
    auto run = GraphicalLasso(s, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(MaxAbsDiff(run->theta, reference_run->theta), 0.0)
        << "threads=" << threads;
    EXPECT_EQ(MaxAbsDiff(run->w, reference_run->w), 0.0)
        << "threads=" << threads;
    EXPECT_EQ(run->sweeps, reference_run->sweeps);
    EXPECT_EQ(run->stats.lasso_full_passes,
              reference_run->stats.lasso_full_passes);
    EXPECT_EQ(run->stats.lasso_active_passes,
              reference_run->stats.lasso_active_passes);
  }
}

TEST_F(GlassoEquivalenceTest, WarmStartConvergesToTheSameSolution) {
  const Matrix base = BlockCorrelation(30, 5, 0.4);
  const Matrix next = BlockCorrelation(30, 5, 0.42);
  const GlassoOptions options = TightOptions();
  auto seed = GraphicalLasso(base, options);
  ASSERT_TRUE(seed.ok());
  EXPECT_FALSE(seed->stats.warm_start_used);

  auto cold = GraphicalLasso(next, options);
  ASSERT_TRUE(cold.ok());
  GlassoOptions warm_options = options;
  warm_options.warm_w = &seed->w;
  warm_options.warm_theta = &seed->theta;
  auto warm = GraphicalLasso(next, warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->stats.warm_start_used);
  // Same fixed point, fewer (or equal) iterations to reach it.
  EXPECT_LE(MaxAbsDiff(warm->theta, cold->theta), 1e-8);
  EXPECT_LE(warm->stats.lasso_full_passes + warm->stats.lasso_active_passes,
            cold->stats.lasso_full_passes + cold->stats.lasso_active_passes);
}

TEST_F(GlassoEquivalenceTest, MismatchedWarmStartIsIgnored) {
  const Matrix s = BlockCorrelation(20, 5, 0.4);
  const GlassoOptions options = TightOptions();
  auto cold = GraphicalLasso(s, options);
  ASSERT_TRUE(cold.ok());
  Matrix wrong_size = Matrix::Identity(7);
  GlassoOptions warm_options = options;
  warm_options.warm_w = &wrong_size;
  warm_options.warm_theta = &wrong_size;
  auto run = GraphicalLasso(s, warm_options);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->stats.warm_start_used);
  EXPECT_EQ(MaxAbsDiff(run->theta, cold->theta), 0.0);
}

TEST_F(GlassoEquivalenceTest, PreservesSymmetryAndSparsityContract) {
  const GlassoOptions options = TightOptions();
  const Matrix s = RandomCorrelation(24, 42);
  auto fast = GraphicalLasso(s, options);
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(fast->theta.IsSymmetric(1e-12));
  // An averaged pair is zero only when both directions were zero, so a
  // zero in the symmetrized theta certifies the lasso zeroed the pair.
  for (size_t i = 0; i < 24; ++i) {
    for (size_t j = i + 1; j < 24; ++j) {
      EXPECT_EQ(fast->theta(i, j), fast->theta(j, i));
    }
  }
}

TEST_F(GlassoEquivalenceTest, ActiveSetStatsArePopulated) {
  const Matrix s = BlockCorrelation(40, 10, 0.4);
  auto run = GraphicalLasso(s, TightOptions());
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.lasso_full_passes, 0u);
  EXPECT_GE(run->stats.ActiveHitRate(), 0.0);
  EXPECT_LE(run->stats.ActiveHitRate(), 1.0);
  EXPECT_EQ(run->stats.component_sizes, (std::vector<size_t>{10, 10, 10, 10}));
  EXPECT_GT(run->stats.sweeps, 0u);
}

TEST_F(GlassoEquivalenceTest, DeadlineExpiryPropagatesFromParallelBlocks) {
  const Matrix s = BlockCorrelation(60, 10, 0.45);
  const Deadline deadline(1e-9);
  // Make sure the budget is genuinely over before the solver polls it.
  while (!deadline.Expired()) {
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  for (size_t threads : {1u, 4u}) {
    GlassoOptions options = TightOptions();
    options.threads = threads;
    options.deadline = &deadline;
    auto run = GraphicalLasso(s, options);
    ASSERT_FALSE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(run.status().code(), StatusCode::kTimeout);
  }
}

TEST_F(GlassoEquivalenceTest, SweepFaultPropagatesFromParallelBlocks) {
  const Matrix s = BlockCorrelation(60, 10, 0.45);
  for (size_t threads : {1u, 4u}) {
    ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + ":2+").ok());
    GlassoOptions options = TightOptions();
    options.threads = threads;
    auto run = GraphicalLasso(s, options);
    ASSERT_FALSE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(run.status().code(), StatusCode::kNumericalError);
    EXPECT_NE(run.status().message().find("glasso.sweep"), std::string::npos);
    DisarmFaults();
  }
}

TEST_F(GlassoEquivalenceTest, LassoFaultPropagatesFromParallelBlocks) {
  const Matrix s = BlockCorrelation(60, 10, 0.45);
  for (size_t threads : {1u, 4u}) {
    ASSERT_TRUE(ArmFaults(kFaultLassoSolve).ok());
    GlassoOptions options = TightOptions();
    options.threads = threads;
    auto run = GraphicalLasso(s, options);
    ASSERT_FALSE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(run.status().code(), StatusCode::kNumericalError);
    EXPECT_NE(run.status().message().find("lasso.solve"), std::string::npos);
    DisarmFaults();
  }
}

// --- QUIC-style Newton backend -------------------------------------

TEST_F(GlassoEquivalenceTest, NewtonMatchesReferenceOnDenseProblems) {
  GlassoOptions options = TightOptions();
  options.solver = GlassoSolver::kNewton;
  for (size_t k : {20u, 50u, 100u}) {
    const Matrix s = RandomCorrelation(k, 300 + k);
    auto newton = GraphicalLasso(s, options);
    // The reference stops on the *mean* absolute W change, which
    // dilutes with k^2; scale its tolerance down so the oracle itself
    // is within 1e-8 of the optimum at every size tested.
    GlassoOptions ref_options = TightOptions();
    ref_options.tolerance = 1e-9 * (400.0 / static_cast<double>(k * k));
    auto reference = GraphicalLassoReference(s, ref_options);
    ASSERT_TRUE(newton.ok())
        << "k=" << k << ": " << newton.status().ToString();
    ASSERT_TRUE(reference.ok()) << "k=" << k;
    EXPECT_STREQ(newton->stats.SolverBackend(), "newton") << "k=" << k;
    EXPECT_EQ(newton->stats.cd_blocks, 0u);
    EXPECT_GT(newton->stats.newton_iterations, 0u);
    EXPECT_LE(MaxAbsDiff(newton->theta, reference->theta), 1e-8)
        << "k=" << k;
    EXPECT_LE(MaxAbsDiff(newton->w, reference->w), 1e-8) << "k=" << k;
  }
}

TEST_F(GlassoEquivalenceTest, NewtonSolutionSatisfiesKktConditions) {
  // Same stationarity conditions as the CD solver (shared objective,
  // shared diagonal convention): this pins the Newton solution to the
  // optimum directly, not merely to another solver's output.
  GlassoOptions options = TightOptions();
  options.solver = GlassoSolver::kNewton;
  options.diagonal_ridge = 0.0;
  const Matrix s = RandomCorrelation(40, 9);
  auto run = GraphicalLasso(s, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const double lambda = options.lambda;
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(run->w(i, i), s(i, i) + lambda, 1e-8);
    for (size_t j = 0; j < 40; ++j) {
      if (i == j) continue;
      const double grad = run->w(i, j) - s(i, j);
      const double theta_ij = run->theta(i, j);
      if (std::fabs(theta_ij) > 1e-7) {
        EXPECT_NEAR(grad, lambda * (theta_ij > 0 ? 1.0 : -1.0), 1e-6)
            << i << "," << j;
      } else {
        EXPECT_LE(std::fabs(grad), lambda + 1e-6) << i << "," << j;
      }
    }
  }
}

TEST_F(GlassoEquivalenceTest, NewtonDeterministicAcrossThreadCounts) {
  // Three forced-Newton blocks fan out across workers; the assembled
  // result must be bit-identical at any thread count.
  const Matrix s = BlockCorrelation(60, 20, 0.45);
  GlassoOptions options = TightOptions();
  options.solver = GlassoSolver::kNewton;
  options.threads = 1;
  auto reference_run = GraphicalLasso(s, options);
  ASSERT_TRUE(reference_run.ok()) << reference_run.status().ToString();
  EXPECT_EQ(reference_run->stats.newton_blocks, 3u);
  for (size_t threads : {2u, 8u}) {
    options.threads = threads;
    auto run = GraphicalLasso(s, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(MaxAbsDiff(run->theta, reference_run->theta), 0.0)
        << "threads=" << threads;
    EXPECT_EQ(MaxAbsDiff(run->w, reference_run->w), 0.0)
        << "threads=" << threads;
    EXPECT_EQ(run->stats.newton_iterations,
              reference_run->stats.newton_iterations);
    EXPECT_EQ(run->stats.newton_path_stages,
              reference_run->stats.newton_path_stages);
  }
}

TEST_F(GlassoEquivalenceTest, NewtonWarmStartSkipsPathAndConverges) {
  const Matrix s = RandomCorrelation(40, 11);
  GlassoOptions options = TightOptions();
  options.solver = GlassoSolver::kNewton;
  auto cold = GraphicalLasso(s, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->stats.newton_path_stages, 0u);

  // Seeding from the solved point skips continuation and re-converges
  // to the same fixed point in no more iterations than the cold solve.
  GlassoOptions warm_options = options;
  warm_options.warm_w = &cold->w;
  warm_options.warm_theta = &cold->theta;
  auto warm = GraphicalLasso(s, warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->stats.warm_start_used);
  EXPECT_EQ(warm->stats.newton_path_stages, 0u);
  EXPECT_LE(MaxAbsDiff(warm->theta, cold->theta), 1e-8);
  EXPECT_LE(warm->stats.newton_iterations, cold->stats.newton_iterations);

  // The path is an initial-point device only: disabling it changes the
  // route, not the destination.
  GlassoOptions no_path = options;
  no_path.lambda_path = false;
  auto direct = GraphicalLasso(s, no_path);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->stats.newton_path_stages, 0u);
  EXPECT_LE(MaxAbsDiff(direct->theta, cold->theta), 1e-8);
}

TEST_F(GlassoEquivalenceTest, AutoDispatchRoutesByComponentShape) {
  GlassoOptions options = TightOptions();  // solver defaults to kAuto
  // Small blocks (size 5 < newton_min_block): CD.
  auto small = GraphicalLasso(BlockCorrelation(20, 5, 0.4), options);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->stats.newton_blocks, 0u);
  EXPECT_STREQ(small->stats.SolverBackend(), "cd");
  // Banded screening graph (density < newton_dense_threshold): CD even
  // at size 40.
  Matrix banded(40, 40);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 40; ++j) {
      banded(i, j) = std::pow(0.5, std::fabs(static_cast<double>(i) -
                                             static_cast<double>(j)));
    }
  }
  auto sparse = GraphicalLasso(banded, options);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->stats.newton_blocks, 0u);
  // One large dense component: Newton, and the same answer as forced CD.
  const Matrix dense = RandomCorrelation(40, 13);
  auto routed = GraphicalLasso(dense, options);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->stats.newton_blocks, 1u);
  EXPECT_STREQ(routed->stats.SolverBackend(), "newton");
  GlassoOptions cd_options = options;
  cd_options.solver = GlassoSolver::kCoordinateDescent;
  auto cd = GraphicalLasso(dense, cd_options);
  ASSERT_TRUE(cd.ok());
  EXPECT_EQ(cd->stats.newton_blocks, 0u);
  EXPECT_LE(MaxAbsDiff(routed->theta, cd->theta), 1e-8);
}

TEST_F(GlassoEquivalenceTest, NewtonSweepFaultPropagates) {
  GlassoOptions options = TightOptions();
  options.solver = GlassoSolver::kNewton;
  ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + ":1+").ok());
  auto run = GraphicalLasso(RandomCorrelation(20, 3), options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNumericalError);
  EXPECT_NE(run.status().message().find("glasso.sweep"), std::string::npos);
  DisarmFaults();
}

TEST_F(GlassoEquivalenceTest, SolverNameRoundTrip) {
  EXPECT_STREQ(GlassoSolverName(GlassoSolver::kAuto), "auto");
  EXPECT_STREQ(GlassoSolverName(GlassoSolver::kCoordinateDescent), "cd");
  EXPECT_STREQ(GlassoSolverName(GlassoSolver::kNewton), "newton");
  GlassoSolver solver = GlassoSolver::kAuto;
  EXPECT_TRUE(ParseGlassoSolver("newton", &solver));
  EXPECT_EQ(solver, GlassoSolver::kNewton);
  EXPECT_TRUE(ParseGlassoSolver("cd", &solver));
  EXPECT_EQ(solver, GlassoSolver::kCoordinateDescent);
  EXPECT_TRUE(ParseGlassoSolver("auto", &solver));
  EXPECT_EQ(solver, GlassoSolver::kAuto);
  EXPECT_FALSE(ParseGlassoSolver("quic", &solver));
}

TEST_F(GlassoEquivalenceTest, CallLevelFaultFiresOnAllSingletonInput) {
  // Screening leaves no block with a sweep loop; an armed glasso.sweep
  // fault must still fire (recovery tests depend on per-attempt
  // semantics regardless of input structure).
  ASSERT_TRUE(ArmFaults(kFaultGlassoSweep).ok());
  auto run = GraphicalLasso(Matrix::Identity(5), TightOptions());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNumericalError);
  DisarmFaults();
}

}  // namespace
}  // namespace fdx
