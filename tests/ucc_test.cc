#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ucc.h"
#include "data/csv.h"
#include "util/rng.h"

namespace fdx {
namespace {

bool HasUcc(const std::vector<Ucc>& uccs, std::vector<size_t> attrs) {
  for (const auto& ucc : uccs) {
    if (ucc.attributes == attrs) return true;
  }
  return false;
}

TEST(UccTest, FindsSingleColumnKey) {
  auto t = ParseCsv("id,v\n1,a\n2,a\n3,b\n");
  ASSERT_TRUE(t.ok());
  auto uccs = DiscoverUccs(*t);
  ASSERT_TRUE(uccs.ok());
  EXPECT_TRUE(HasUcc(*uccs, {0}));
  EXPECT_FALSE(HasUcc(*uccs, {1}));
}

TEST(UccTest, FindsCompositeKeyOnly) {
  // Neither column is unique; the pair is.
  auto t = ParseCsv("a,b\n1,1\n1,2\n2,1\n2,2\n");
  ASSERT_TRUE(t.ok());
  auto uccs = DiscoverUccs(*t);
  ASSERT_TRUE(uccs.ok());
  EXPECT_FALSE(HasUcc(*uccs, {0}));
  EXPECT_FALSE(HasUcc(*uccs, {1}));
  EXPECT_TRUE(HasUcc(*uccs, {0, 1}));
}

TEST(UccTest, MinimalityPrunesSupersets) {
  auto t = ParseCsv("id,a,b\n1,x,p\n2,x,q\n3,y,p\n");
  ASSERT_TRUE(t.ok());
  auto uccs = DiscoverUccs(*t);
  ASSERT_TRUE(uccs.ok());
  EXPECT_TRUE(HasUcc(*uccs, {0}));
  // No UCC containing the id column besides {id} itself.
  for (const auto& ucc : *uccs) {
    if (ucc.attributes.size() > 1) {
      EXPECT_TRUE(std::find(ucc.attributes.begin(), ucc.attributes.end(),
                            size_t{0}) == ucc.attributes.end())
          << "non-minimal UCC containing the key";
    }
  }
}

TEST(UccTest, ApproximateKeysToleratedWithError) {
  // id unique except one duplicated pair of rows.
  Table t{Schema({"almost_id"})};
  for (int i = 0; i < 100; ++i) t.AppendRow({Value(int64_t{i})});
  t.AppendRow({Value(int64_t{0})});  // duplicate
  UccOptions exact;
  auto strict = DiscoverUccs(t, exact);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(HasUcc(*strict, {0}));
  UccOptions tolerant;
  tolerant.max_error = 0.05;
  auto approx = DiscoverUccs(t, tolerant);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(HasUcc(*approx, {0}));
  EXPECT_NEAR((*approx)[0].error, 1.0 / 101.0, 1e-9);
}

TEST(UccTest, NullsCountAsDistinct) {
  // Nulls match nothing, so a column of nulls is trivially unique.
  auto t = ParseCsv("x\n\n\n\n");
  ASSERT_TRUE(t.ok());
  auto uccs = DiscoverUccs(*t);
  ASSERT_TRUE(uccs.ok());
  EXPECT_TRUE(HasUcc(*uccs, {0}));
}

TEST(UccTest, SizeCapRespected) {
  // Random ternary columns: only large combinations are unique.
  Table t{Schema({"a", "b", "c", "d"})};
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 2)), Value(rng.NextInt(0, 2)),
                 Value(rng.NextInt(0, 2)), Value(rng.NextInt(0, 2))});
  }
  UccOptions options;
  options.max_size = 2;
  auto uccs = DiscoverUccs(t, options);
  ASSERT_TRUE(uccs.ok());
  for (const auto& ucc : *uccs) {
    EXPECT_LE(ucc.attributes.size(), 2u);
  }
}

TEST(UccTest, TimeBudgetHonored) {
  Table t{Schema({"a", "b", "c", "d", "e", "f", "g", "h"})};
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    std::vector<Value> row;
    for (int c = 0; c < 8; ++c) row.push_back(Value(rng.NextInt(0, 3)));
    t.AppendRow(std::move(row));
  }
  UccOptions options;
  options.time_budget_seconds = 1e-9;
  auto uccs = DiscoverUccs(t, options);
  EXPECT_FALSE(uccs.ok());
  EXPECT_EQ(uccs.status().code(), StatusCode::kTimeout);
}

TEST(UccTest, RejectsEmptyTable) {
  EXPECT_FALSE(DiscoverUccs(Table(), {}).ok());
}

}  // namespace
}  // namespace fdx
