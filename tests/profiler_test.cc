#include <gtest/gtest.h>

#include "data/csv.h"
#include "eval/profiler.h"
#include "util/rng.h"

namespace fdx {
namespace {

/// Fixture with one FD (x -> y), one key (id), one IND (sub ⊆ sup) and
/// missing values.
Table ProfilerFixture(size_t n, uint64_t seed) {
  Table t{Schema({"id", "x", "y", "sub", "sup"})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = rng.NextInt(0, 9);
    t.AppendRow({Value(static_cast<int64_t>(i)), Value(x),
                 Value((x * 7 + 1) % 10), Value(rng.NextInt(0, 4)),
                 Value(rng.NextInt(0, 9))});
  }
  t.set_cell(3, 2, Value::Null());
  return t;
}

TEST(ProfilerTest, ProducesAllSections) {
  Table t = ProfilerFixture(600, 1);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->columns.size(), 5u);
  EXPECT_EQ(profile->columns[0].name, "id");
  EXPECT_EQ(profile->columns[2].null_count, 1u);
  EXPECT_FALSE(profile->fds.empty());
  EXPECT_FALSE(profile->keys.empty());
  EXPECT_FALSE(profile->inds.empty());
  EXPECT_GE(profile->seconds, 0.0);
}

TEST(ProfilerTest, FdxFdValidatedInPlace) {
  Table t = ProfilerFixture(600, 2);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  bool found_xy = false;
  for (const auto& report : profile->fds) {
    const bool about_xy =
        (report.fd.rhs == 2 && report.fd.lhs == std::vector<size_t>{1}) ||
        (report.fd.rhs == 1 && report.fd.lhs == std::vector<size_t>{2});
    if (about_xy) {
      found_xy = true;
      EXPECT_LT(report.g3_error, 0.01);
    }
  }
  EXPECT_TRUE(found_xy);
}

TEST(ProfilerTest, FdParticipationFlagsSet) {
  Table t = ProfilerFixture(600, 3);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->columns[1].participates_in_fd);  // x
  EXPECT_TRUE(profile->columns[2].participates_in_fd);  // y
  EXPECT_FALSE(profile->columns[0].participates_in_fd);  // id
}

TEST(ProfilerTest, KeyDiscovered) {
  Table t = ProfilerFixture(300, 4);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  bool id_is_key = false;
  for (const auto& key : profile->keys) {
    if (key.attributes == std::vector<size_t>{0}) id_is_key = true;
  }
  EXPECT_TRUE(id_is_key);
}

TEST(ProfilerTest, IndDiscovered) {
  Table t = ProfilerFixture(600, 5);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  bool sub_in_sup = false;
  for (const auto& ind : profile->inds) {
    if (ind.lhs == 3 && ind.rhs == 4) sub_in_sup = true;
  }
  EXPECT_TRUE(sub_in_sup);
}

TEST(ProfilerTest, RenderMentionsEverySection) {
  Table t = ProfilerFixture(400, 6);
  auto profile = ProfileTable(t);
  ASSERT_TRUE(profile.ok());
  const std::string report = RenderProfile(*profile, t.schema());
  EXPECT_NE(report.find("Functional dependencies"), std::string::npos);
  EXPECT_NE(report.find("Minimal keys"), std::string::npos);
  EXPECT_NE(report.find("Conditional FDs"), std::string::npos);
  EXPECT_NE(report.find("Inclusion dependencies"), std::string::npos);
  EXPECT_NE(report.find("id"), std::string::npos);
}

TEST(ProfilerTest, RejectsDegenerateInput) {
  EXPECT_FALSE(ProfileTable(Table()).ok());
  Table one_row{Schema({"a"})};
  one_row.AppendRow({Value(int64_t{1})});
  EXPECT_FALSE(ProfileTable(one_row).ok());
}

}  // namespace
}  // namespace fdx
