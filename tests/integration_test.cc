#include <gtest/gtest.h>

#include "bn/networks.h"
#include "core/fdx.h"
#include "core/transform.h"
#include "datasets/real_world.h"
#include "eval/runner.h"
#include "linalg/stats.h"
#include "synth/generator.h"

namespace fdx {
namespace {

/// End-to-end checks of the paper's headline claims on small instances.

TEST(IntegrationTest, FdxBeatsEnumerationMethodsOnNoisyData) {
  // Table 4 / Figure 2's qualitative story: the structure-learning
  // methods dominate the enumeration methods in F1 under noise.
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 12;
  config.noise_rate = 0.05;
  RunnerConfig runner;
  runner.expected_error = 0.05;
  runner.time_budget_seconds = 60;
  double fdx_f1 = 0.0, tane_f1 = 0.0, pyro_f1 = 0.0;
  std::vector<double> fdx_scores, tane_scores, pyro_scores;
  for (uint64_t seed : {11, 12, 13}) {
    config.seed = seed;
    auto ds = GenerateSynthetic(config);
    ASSERT_TRUE(ds.ok());
    auto fdx = RunMethod(MethodId::kFdx, ds->noisy, runner);
    auto tane = RunMethod(MethodId::kTane, ds->noisy, runner);
    auto pyro = RunMethod(MethodId::kPyro, ds->noisy, runner);
    ASSERT_TRUE(fdx.ok && tane.ok && pyro.ok);
    fdx_f1 += ScoreFdsUndirected(fdx.fds, ds->true_fds).f1;
    tane_f1 += ScoreFdsUndirected(tane.fds, ds->true_fds).f1;
    pyro_f1 += ScoreFdsUndirected(pyro.fds, ds->true_fds).f1;
  }
  EXPECT_GT(fdx_f1, tane_f1);
  EXPECT_GT(fdx_f1, pyro_f1);
}

TEST(IntegrationTest, PairTransformBeatsRawStructureLearning) {
  // §4.3 / Table 4: FDX (structure learning over pair differences) must
  // beat GL (the same structure-learning machinery applied to the raw
  // encoding) on the known-structure benchmarks.
  RunnerConfig runner;
  runner.time_budget_seconds = 120;
  double fdx_f1 = 0.0, gl_f1 = 0.0;
  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(31);
    auto sample = bn.net.Sample(5000, &rng);
    ASSERT_TRUE(sample.ok());
    auto fdx = RunMethod(MethodId::kFdx, *sample, runner);
    auto gl = RunMethod(MethodId::kGl, *sample, runner);
    ASSERT_TRUE(fdx.ok) << bn.name << ": " << fdx.error;
    ASSERT_TRUE(gl.ok) << bn.name << ": " << gl.error;
    fdx_f1 += ScoreFdsUndirected(fdx.fds, bn.net.GroundTruthFds()).f1;
    gl_f1 += ScoreFdsUndirected(gl.fds, bn.net.GroundTruthFds()).f1;
  }
  EXPECT_GT(fdx_f1, gl_f1);
}

TEST(IntegrationTest, FdxParsimoniousOnRealWorldReplica) {
  // Table 6's story: FDX reports at most one FD per attribute while the
  // enumeration methods report hundreds.
  RealWorldDataset hospital = MakeHospitalDataset();
  RunnerConfig runner;
  runner.expected_error = 0.02;
  runner.time_budget_seconds = 120;
  auto fdx = RunMethod(MethodId::kFdx, hospital.table, runner);
  auto tane = RunMethod(MethodId::kTane, hospital.table, runner);
  ASSERT_TRUE(fdx.ok) << fdx.error;
  ASSERT_TRUE(tane.ok) << tane.error;
  EXPECT_LE(fdx.fds.size(), hospital.table.num_columns());
  EXPECT_GT(tane.fds.size(), fdx.fds.size());
}

TEST(IntegrationTest, FdxRecoversHospitalMasterDataDependencies) {
  // Figure 3: provider-level and measure-level hierarchies surface.
  RealWorldDataset hospital = MakeHospitalDataset();
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(hospital.table);
  ASSERT_TRUE(result.ok());
  FdScore score = ScoreFdsUndirected(result->fds, hospital.embedded_fds);
  EXPECT_GT(score.recall, 0.5)
      << FdSetToString(result->fds, hospital.table.schema());
  // FDX chains equivalent provider keys (ProviderNumber, HospitalName,
  // Address1, ...) instead of starring everything off ProviderNumber —
  // exactly the shape of paper Figure 3 — so edge precision against the
  // canonical star underestimates quality. Check data-level validity:
  // nearly every reported FD must (approximately) hold on the table.
  // Some edges come out direction-flipped (the pair model is symmetric
  // per tuple pair; cf. ScoreFdsUndirected) and are invalid as written;
  // the clear majority must hold.
  const EncodedTable encoded = EncodedTable::Encode(hospital.table);
  size_t valid = 0;
  for (const auto& fd : result->fds) {
    if (FdG3Error(encoded, fd) < 0.05) ++valid;
  }
  EXPECT_GE(static_cast<double>(valid),
            0.6 * static_cast<double>(result->fds.size()));
}

TEST(IntegrationTest, BenchmarkNetworksEndToEnd) {
  // A cut-down Table 4: every network, FDX F1 above a floor.
  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(5000, &rng);
    ASSERT_TRUE(sample.ok());
    FdxDiscoverer discoverer;
    auto result = discoverer.Discover(*sample);
    ASSERT_TRUE(result.ok()) << bn.name;
    FdScore score = ScoreFdsUndirected(result->fds, bn.net.GroundTruthFds());
    EXPECT_GT(score.f1, 0.45) << bn.name;
  }
}

}  // namespace
}  // namespace fdx
