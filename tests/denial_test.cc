#include <gtest/gtest.h>

#include "baselines/denial.h"
#include "data/csv.h"
#include "util/rng.h"

namespace fdx {
namespace {

bool HasDc(const std::vector<DenialConstraint>& dcs, const Schema& schema,
           const std::string& rendered) {
  for (const auto& dc : dcs) {
    if (dc.ToString(schema) == rendered) return true;
  }
  return false;
}

TEST(DenialTest, FdSurfacesAsDenialConstraint) {
  // y = f(x): the DC not(t.x = t'.x and t.y != t'.y) must hold.
  Table t{Schema({"x", "y"})};
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const int64_t x = rng.NextInt(0, 7);
    t.AppendRow({Value(x), Value((x * 3 + 1) % 8)});
  }
  auto dcs = DiscoverDenialConstraints(t);
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(HasDc(*dcs, t.schema(), "not(t.x = t'.x and t.y != t'.y)"))
      << "DCs found: " << dcs->size();
}

TEST(DenialTest, OrderDependencySurfacesAsLtConstraint) {
  // b strictly increases with a: not(t.a < t'.a and t.b > t'.b).
  Table t{Schema({"a", "b"})};
  for (int i = 0; i < 300; ++i) {
    t.AppendRow({Value(int64_t{i}), Value(int64_t{2 * i + 5})});
  }
  auto dcs = DiscoverDenialConstraints(t);
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(HasDc(*dcs, t.schema(), "not(t.a < t'.a and t.b > t'.b)"));
  EXPECT_TRUE(HasDc(*dcs, t.schema(), "not(t.a > t'.a and t.b < t'.b)"));
}

TEST(DenialTest, KeySurfacesAsUnaryEqualityDc) {
  // Unique column: no two tuples agree -> not(t.id = t'.id).
  Table t{Schema({"id", "v"})};
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({Value(int64_t{i}), Value(rng.NextInt(0, 3))});
  }
  auto dcs = DiscoverDenialConstraints(t);
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(HasDc(*dcs, t.schema(), "not(t.id = t'.id)"));
}

TEST(DenialTest, MinimalityNoSupersetOfFoundDc) {
  Table t{Schema({"id", "v"})};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({Value(int64_t{i}), Value(rng.NextInt(0, 3))});
  }
  auto dcs = DiscoverDenialConstraints(t);
  ASSERT_TRUE(dcs.ok());
  // not(t.id = t'.id) holds, so no DC may contain the id-equality
  // predicate together with anything else.
  for (const auto& dc : *dcs) {
    bool has_id_eq = false;
    for (const auto& predicate : dc.predicates) {
      if (predicate.attribute == 0 && predicate.op == PairOp::kEq) {
        has_id_eq = true;
      }
    }
    if (has_id_eq) {
      EXPECT_EQ(dc.predicates.size(), 1u) << dc.ToString(t.schema());
    }
  }
}

TEST(DenialTest, NoConstraintsOnRandomDenseData) {
  // Small domains + plenty of rows: every predicate combination has a
  // witnessing pair, so nothing (of size <= 2) is valid.
  Table t{Schema({"a", "b"})};
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 2)), Value(rng.NextInt(0, 2))});
  }
  DcOptions options;
  options.max_predicates = 2;
  auto dcs = DiscoverDenialConstraints(t, options);
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(dcs->empty());
}

TEST(DenialTest, PredicateBudgetRespected) {
  Table t{Schema({"a", "b", "c"})};
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const int64_t a = rng.NextInt(0, 9);
    t.AppendRow({Value(a), Value(a % 3), Value(rng.NextInt(0, 9))});
  }
  DcOptions options;
  options.max_predicates = 2;
  auto dcs = DiscoverDenialConstraints(t, options);
  ASSERT_TRUE(dcs.ok());
  for (const auto& dc : *dcs) {
    EXPECT_LE(dc.predicates.size(), 2u);
  }
}

TEST(DenialTest, RejectsWideTables) {
  Table t{Schema(std::vector<std::string>(17, "x"))};
  EXPECT_FALSE(DiscoverDenialConstraints(t).ok());
}

TEST(DenialTest, RejectsDegenerateInput) {
  EXPECT_FALSE(DiscoverDenialConstraints(Table()).ok());
}

TEST(DenialTest, ToStringRendersOps) {
  DenialConstraint dc;
  dc.predicates = {{0, PairOp::kEq}, {1, PairOp::kGt}};
  Schema schema({"a", "b"});
  EXPECT_EQ(dc.ToString(schema), "not(t.a = t'.a and t.b > t'.b)");
}

}  // namespace
}  // namespace fdx
