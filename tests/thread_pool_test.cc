#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fdx {
namespace {

TEST(DefaultThreadCountTest, ReadsFdxThreadsEnv) {
  ASSERT_EQ(setenv("FDX_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  EXPECT_EQ(ResolveThreadCount(0), 3u);
  EXPECT_EQ(ResolveThreadCount(5), 5u);
  ASSERT_EQ(unsetenv("FDX_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(DefaultThreadCountTest, IgnoresInvalidEnv) {
  ASSERT_EQ(setenv("FDX_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
  ASSERT_EQ(setenv("FDX_THREADS", "-2", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
  ASSERT_EQ(unsetenv("FDX_THREADS"), 0);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  ASSERT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(counter.load(), 16);
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr size_t kItems = 1000;
  std::vector<int> visits(kItems, 0);
  ParallelFor(0, kItems, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  std::vector<int> visits(3, 0);
  ParallelFor(0, 3, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++visits[i];
  });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 3);
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::vector<int> visits(10, 0);
  ParallelFor(4, 10, 3, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(visits[i], 0);
  for (size_t i = 4; i < 10; ++i) EXPECT_EQ(visits[i], 1);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(0, 100, 4,
                  [](size_t lo, size_t) {
                    if (lo >= 25) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // Inline path (single chunk) propagates too.
  EXPECT_THROW(ParallelFor(0, 1, 1,
                           [](size_t, size_t) {
                             throw std::runtime_error("inline boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ExceptionDoesNotAbortOtherChunks) {
  std::atomic<size_t> covered{0};
  try {
    ParallelFor(0, 64, 8, [&](size_t lo, size_t hi) {
      covered.fetch_add(hi - lo);
      if (lo == 0) throw std::runtime_error("partial");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Every chunk still ran (the pool drains all chunks before rethrow).
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ParallelForChunksTest, HonorsChunkCountAndBoundaries) {
  constexpr size_t kItems = 103;
  constexpr size_t kChunks = 7;
  std::vector<int> chunk_seen(kChunks, 0);
  std::vector<int> visits(kItems, 0);
  ParallelForChunks(0, kItems, kChunks, 4,
                    [&](size_t chunk, size_t lo, size_t hi) {
                      ASSERT_LT(chunk, kChunks);
                      ++chunk_seen[chunk];
                      EXPECT_LT(lo, hi);
                      for (size_t i = lo; i < hi; ++i) ++visits[i];
                    });
  for (size_t c = 0; c < kChunks; ++c) EXPECT_EQ(chunk_seen[c], 1);
  for (size_t i = 0; i < kItems; ++i) EXPECT_EQ(visits[i], 1);
}

TEST(ParallelForChunksTest, ChunkBoundariesIgnoreThreadCount) {
  // The chunk decomposition must be a pure function of (range, chunks):
  // record the boundaries at 2 and at 8 threads and compare.
  auto boundaries = [](size_t threads) {
    std::vector<std::pair<size_t, size_t>> out(5);
    ParallelForChunks(10, 47, 5, threads,
                      [&](size_t chunk, size_t lo, size_t hi) {
                        out[chunk] = {lo, hi};
                      });
    return out;
  };
  EXPECT_EQ(boundaries(2), boundaries(8));
  EXPECT_EQ(boundaries(1), boundaries(8));
}

TEST(ParallelForTest, NestedParallelForCompletes) {
  std::atomic<size_t> total{0};
  ParallelFor(0, 8, 4, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(0, 100, 4, [&](size_t ilo, size_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

}  // namespace
}  // namespace fdx
