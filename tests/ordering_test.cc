#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/ordering.h"
#include "util/rng.h"

namespace fdx {
namespace {

bool IsPermutation(const std::vector<size_t>& perm) {
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

Matrix RandomSparseTheta(size_t k, double density, uint64_t seed) {
  Rng rng(seed);
  Matrix theta(k, k);
  for (size_t i = 0; i < k; ++i) theta(i, i) = 2.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (rng.NextBernoulli(density)) {
        const double v = 0.3 * rng.NextGaussian();
        theta(i, j) = v;
        theta(j, i) = v;
      }
    }
  }
  return theta;
}

TEST(OrderingTest, ParseNames) {
  EXPECT_EQ(*ParseOrderingMethod("natural"), OrderingMethod::kNatural);
  EXPECT_EQ(*ParseOrderingMethod("heuristic"), OrderingMethod::kMinDegree);
  EXPECT_EQ(*ParseOrderingMethod("mindegree"), OrderingMethod::kMinDegree);
  EXPECT_EQ(*ParseOrderingMethod("amd"), OrderingMethod::kAmd);
  EXPECT_EQ(*ParseOrderingMethod("colamd"), OrderingMethod::kColamd);
  EXPECT_EQ(*ParseOrderingMethod("metis"), OrderingMethod::kMetis);
  EXPECT_EQ(*ParseOrderingMethod("nesdis"), OrderingMethod::kNesdis);
  EXPECT_FALSE(ParseOrderingMethod("bogus").ok());
}

TEST(OrderingTest, NameRoundTrip) {
  for (OrderingMethod m :
       {OrderingMethod::kNatural, OrderingMethod::kMinDegree,
        OrderingMethod::kAmd, OrderingMethod::kColamd,
        OrderingMethod::kMetis, OrderingMethod::kNesdis}) {
    EXPECT_EQ(*ParseOrderingMethod(OrderingMethodName(m)), m);
  }
}

TEST(OrderingTest, NaturalIsIdentity) {
  Matrix theta = RandomSparseTheta(10, 0.3, 1);
  auto perm = ComputeOrdering(theta, OrderingMethod::kNatural);
  std::vector<size_t> identity(10);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(perm, identity);
}

class OrderingPropertyTest
    : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(OrderingPropertyTest, ProducesValidPermutation) {
  for (size_t k : {1u, 2u, 5u, 13u, 40u}) {
    Matrix theta = RandomSparseTheta(k, 0.25, k);
    auto perm = ComputeOrdering(theta, GetParam());
    EXPECT_EQ(perm.size(), k);
    EXPECT_TRUE(IsPermutation(perm)) << OrderingMethodName(GetParam())
                                     << " k=" << k;
  }
}

TEST_P(OrderingPropertyTest, DeterministicAcrossCalls) {
  Matrix theta = RandomSparseTheta(15, 0.3, 7);
  auto a = ComputeOrdering(theta, GetParam());
  auto b = ComputeOrdering(theta, GetParam());
  EXPECT_EQ(a, b);
}

TEST_P(OrderingPropertyTest, HandlesDiagonalTheta) {
  Matrix theta(6, 6);
  for (size_t i = 0; i < 6; ++i) theta(i, i) = 1.0;
  auto perm = ComputeOrdering(theta, GetParam());
  EXPECT_TRUE(IsPermutation(perm));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, OrderingPropertyTest,
    ::testing::Values(OrderingMethod::kNatural, OrderingMethod::kMinDegree,
                      OrderingMethod::kAmd, OrderingMethod::kColamd,
                      OrderingMethod::kMetis, OrderingMethod::kNesdis),
    [](const auto& info) { return OrderingMethodName(info.param); });

TEST(OrderingTest, MinDegreeEliminatesIsolatedFirst) {
  // Star graph: center 0 connected to 1..4; vertex 5 isolated. The
  // isolated vertex has lowest degree and must precede the hub.
  Matrix theta(6, 6);
  for (size_t i = 0; i < 6; ++i) theta(i, i) = 2.0;
  for (size_t leaf = 1; leaf <= 4; ++leaf) {
    theta(0, leaf) = 0.5;
    theta(leaf, 0) = 0.5;
  }
  auto perm = ComputeOrdering(theta, OrderingMethod::kMinDegree);
  const auto pos = [&](size_t v) {
    return std::find(perm.begin(), perm.end(), v) - perm.begin();
  };
  EXPECT_LT(pos(5), pos(0));
}

}  // namespace
}  // namespace fdx
