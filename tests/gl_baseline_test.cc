#include <gtest/gtest.h>

#include "baselines/gl_baseline.h"
#include "bn/networks.h"
#include "synth/generator.h"

namespace fdx {
namespace {

TEST(GlBaselineTest, FindsDependenciesOnBenchmarkNetwork) {
  BayesNet net = MakeAsiaNetwork();
  Rng rng(1);
  auto sample = net.Sample(5000, &rng);
  ASSERT_TRUE(sample.ok());
  auto fds = DiscoverGlBaseline(*sample, {});
  ASSERT_TRUE(fds.ok());
  FdScore score = ScoreFdsUndirected(*fds, net.GroundTruthFds());
  EXPECT_GT(score.recall, 0.4);
  EXPECT_GT(score.precision, 0.3);
}

TEST(GlBaselineTest, NoFdsOnIndependentData) {
  Table t{Schema({"a", "b", "c"})};
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 5)), Value(rng.NextInt(0, 5)),
                 Value(rng.NextInt(0, 5))});
  }
  auto fds = DiscoverGlBaseline(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(fds->empty()) << FdSetToString(*fds, t.schema());
}

TEST(GlBaselineTest, ParsimoniousOutput) {
  SyntheticConfig config;
  config.num_tuples = 600;
  config.num_attributes = 10;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverGlBaseline(ds->noisy, {});
  ASSERT_TRUE(fds.ok());
  // At most one FD per dependent attribute (paper §5.4).
  std::set<size_t> rhs_seen;
  for (const auto& fd : *fds) {
    EXPECT_TRUE(rhs_seen.insert(fd.rhs).second);
  }
  EXPECT_LE(fds->size(), 10u);
}

TEST(GlBaselineTest, MaxLhsSizeRespected) {
  SyntheticConfig config;
  config.num_tuples = 400;
  config.num_attributes = 8;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  GlBaselineOptions options;
  options.max_lhs_size = 1;
  auto fds = DiscoverGlBaseline(ds->noisy, options);
  ASSERT_TRUE(fds.ok());
  for (const auto& fd : *fds) {
    EXPECT_EQ(fd.lhs.size(), 1u);
  }
}

TEST(GlBaselineTest, RejectsTinyTable) {
  Table t{Schema({"a"})};
  t.AppendRow({Value(int64_t{1})});
  EXPECT_FALSE(DiscoverGlBaseline(t, {}).ok());
}

}  // namespace
}  // namespace fdx
