#include <gtest/gtest.h>

#include <set>

#include "fd/fd.h"
#include "synth/generator.h"

namespace fdx {
namespace {

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_tuples = 300;
  config.num_attributes = 10;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->clean.num_rows(), 300u);
  EXPECT_EQ(ds->clean.num_columns(), 10u);
  EXPECT_EQ(ds->noisy.num_rows(), 300u);
  EXPECT_FALSE(ds->true_fds.empty());
}

TEST(SyntheticTest, RejectsBadConfig) {
  SyntheticConfig config;
  config.num_attributes = 1;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config.num_attributes = 8;
  config.domain_min = 100;
  config.domain_max = 10;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

TEST(SyntheticTest, PlantedFdsHoldExactlyOnCleanData) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 14;
  config.seed = 5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable encoded = EncodedTable::Encode(ds->clean);
  for (const auto& fd : ds->true_fds) {
    EXPECT_TRUE(FdHoldsExactly(encoded, fd))
        << fd.ToString(ds->clean.schema());
  }
}

TEST(SyntheticTest, LhsSizesBetweenOneAndThree) {
  SyntheticConfig config;
  config.num_attributes = 30;
  config.seed = 6;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  for (const auto& fd : ds->true_fds) {
    EXPECT_GE(fd.lhs.size(), 1u);
    EXPECT_LE(fd.lhs.size(), 4u);  // 3 + at most one trailing-loner merge
  }
}

TEST(SyntheticTest, NoiseBreaksExactness) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 8;
  config.noise_rate = 0.3;
  config.seed = 7;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable encoded = EncodedTable::Encode(ds->noisy);
  bool any_violated = false;
  for (const auto& fd : ds->true_fds) {
    const double error = FdG3Error(encoded, fd);
    if (error > 0.0) any_violated = true;
    // Error should be in the ballpark of the noise rate, not beyond ~3x.
    EXPECT_LT(error, 0.9);
  }
  EXPECT_TRUE(any_violated);
}

TEST(SyntheticTest, LowNoiseKeepsApproximateFds) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 8;
  config.noise_rate = 0.01;
  config.seed = 8;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable encoded = EncodedTable::Encode(ds->noisy);
  for (const auto& fd : ds->true_fds) {
    EXPECT_LT(FdG3Error(encoded, fd), 0.06);
  }
}

TEST(SyntheticTest, CorrelationGroupsAreNotExactFds) {
  // Non-FD groups have rho <= 0.85, so the implied unary mapping must
  // show substantial error on the clean data.
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 20;
  config.seed = 9;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EncodedTable encoded = EncodedTable::Encode(ds->clean);
  std::set<size_t> fd_rhs;
  for (const auto& fd : ds->true_fds) fd_rhs.insert(fd.rhs);
  // Every attribute pair without a planted FD relationship: no exact FD.
  size_t checked = 0;
  for (size_t y = 0; y < 20; ++y) {
    if (fd_rhs.count(y) > 0) continue;
    for (size_t x = 0; x < 20; ++x) {
      if (x == y) continue;
      if (FdG3Error(encoded, FunctionalDependency({x}, y)) == 0.0) {
        // Only keys may determine everything; keys have full cardinality.
        EXPECT_EQ(encoded.Cardinality(x), encoded.num_rows());
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.seed = 10;
  auto a = GenerateSynthetic(config);
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->noisy.num_rows(), b->noisy.num_rows());
  for (size_t r = 0; r < a->noisy.num_rows(); ++r) {
    for (size_t c = 0; c < a->noisy.num_columns(); ++c) {
      EXPECT_TRUE(a->noisy.cell(r, c).EqualsStrict(b->noisy.cell(r, c)));
    }
  }
}

TEST(FlipCellsTest, RespectsRateAndDomain) {
  Table t{Schema({"x", "y"})};
  for (int i = 0; i < 500; ++i) {
    t.AppendRow({Value(int64_t{i % 5}), Value(int64_t{i % 3})});
  }
  Rng rng(11);
  Table flipped = FlipCells(t, {0}, 0.5, &rng);
  size_t changed_x = 0, changed_y = 0;
  for (size_t r = 0; r < 500; ++r) {
    if (!flipped.cell(r, 0).EqualsStrict(t.cell(r, 0))) ++changed_x;
    if (!flipped.cell(r, 1).EqualsStrict(t.cell(r, 1))) ++changed_y;
    // Flipped values stay in the observed domain.
    EXPECT_GE(flipped.cell(r, 0).AsInt(), 0);
    EXPECT_LT(flipped.cell(r, 0).AsInt(), 5);
  }
  EXPECT_EQ(changed_y, 0u);  // column y untouched
  EXPECT_GT(changed_x, 150u);
  EXPECT_LT(changed_x, 350u);
}

TEST(FlipCellsTest, ZeroRateIsIdentity) {
  Table t{Schema({"x"})};
  t.AppendRow({Value(int64_t{1})});
  Rng rng(12);
  Table flipped = FlipCells(t, {0}, 0.0, &rng);
  EXPECT_TRUE(flipped.cell(0, 0).EqualsStrict(t.cell(0, 0)));
}

TEST(PunchHolesTest, IntroducesNulls) {
  Table t{Schema({"x"})};
  for (int i = 0; i < 1000; ++i) t.AppendRow({Value(int64_t{i})});
  Rng rng(13);
  Table holed = PunchHoles(t, 0.2, &rng);
  size_t nulls = 0;
  for (size_t r = 0; r < 1000; ++r) {
    if (holed.cell(r, 0).is_null()) ++nulls;
  }
  EXPECT_GT(nulls, 120u);
  EXPECT_LT(nulls, 300u);
}

}  // namespace
}  // namespace fdx
