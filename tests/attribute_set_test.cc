#include <gtest/gtest.h>

#include "fd/attribute_set.h"

namespace fdx {
namespace {

TEST(AttributeSetTest, EmptyByDefault) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_TRUE(s.ToIndices().empty());
}

TEST(AttributeSetTest, AddRemoveContains) {
  AttributeSet s;
  s.Add(3);
  s.Add(70);  // exercises the high word
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2u);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1u);
  s.Remove(3);  // idempotent
  EXPECT_EQ(s.Count(), 1u);
}

TEST(AttributeSetTest, ToIndicesSorted) {
  AttributeSet s = AttributeSet::FromIndices({100, 5, 63, 64, 0});
  EXPECT_EQ(s.ToIndices(), (std::vector<size_t>{0, 5, 63, 64, 100}));
}

TEST(AttributeSetTest, UnionIntersect) {
  AttributeSet a = AttributeSet::FromIndices({1, 2, 65});
  AttributeSet b = AttributeSet::FromIndices({2, 3, 65, 90});
  EXPECT_EQ(a.Union(b).ToIndices(), (std::vector<size_t>{1, 2, 3, 65, 90}));
  EXPECT_EQ(a.Intersect(b).ToIndices(), (std::vector<size_t>{2, 65}));
}

TEST(AttributeSetTest, WithoutLeavesOriginalIntact) {
  AttributeSet a = AttributeSet::FromIndices({1, 2});
  AttributeSet b = a.Without(1);
  EXPECT_TRUE(a.Contains(1));
  EXPECT_FALSE(b.Contains(1));
  EXPECT_TRUE(b.Contains(2));
}

TEST(AttributeSetTest, SubsetChecks) {
  AttributeSet small = AttributeSet::FromIndices({2, 70});
  AttributeSet big = AttributeSet::FromIndices({1, 2, 70});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(small));
}

TEST(AttributeSetTest, EqualityAndOrdering) {
  AttributeSet a = AttributeSet::FromIndices({1, 2});
  AttributeSet b = AttributeSet::FromIndices({2, 1});
  EXPECT_TRUE(a == b);
  AttributeSet c = AttributeSet::FromIndices({1, 3});
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(AttributeSetTest, HashDistinguishesHighBits) {
  AttributeSet a = AttributeSet::Single(0);
  AttributeSet b = AttributeSet::Single(64);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(AttributeSetTest, SingleFactory) {
  AttributeSet s = AttributeSet::Single(127);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_TRUE(s.Contains(127));
}

}  // namespace
}  // namespace fdx
