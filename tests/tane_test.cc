#include <gtest/gtest.h>

#include <set>

#include "baselines/tane.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

bool ContainsFd(const FdSet& fds, std::vector<size_t> lhs, size_t rhs) {
  return std::find(fds.begin(), fds.end(),
                   FunctionalDependency(std::move(lhs), rhs)) != fds.end();
}

TEST(TaneTest, FindsUnaryExactFd) {
  Table t = TableFromCsv(
      "x,y,z\n1,a,p\n2,b,q\n1,a,r\n2,b,s\n3,c,p\n3,c,q\n");
  auto fds = DiscoverTane(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, {0}, 1));  // x -> y
  EXPECT_TRUE(ContainsFd(*fds, {1}, 0));  // y -> x (bijection)
  EXPECT_FALSE(ContainsFd(*fds, {0}, 2));
}

TEST(TaneTest, FindsCompositeMinimalFd) {
  // z = f(x, y) but neither x nor y alone determines z.
  Table t = TableFromCsv(
      "x,y,z\n0,0,a\n0,1,b\n1,0,b\n1,1,a\n0,0,a\n1,0,b\n");
  auto fds = DiscoverTane(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, {0, 1}, 2));
  EXPECT_FALSE(ContainsFd(*fds, {0}, 2));
  EXPECT_FALSE(ContainsFd(*fds, {1}, 2));
}

TEST(TaneTest, ReportsOnlyMinimalFds) {
  // x -> y holds; {x, z} -> y must not be reported.
  Table t = TableFromCsv("x,z,y\n1,p,a\n1,q,a\n2,p,b\n2,q,b\n");
  auto fds = DiscoverTane(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(ContainsFd(*fds, {0}, 2));
  EXPECT_FALSE(ContainsFd(*fds, {0, 1}, 2));
}

TEST(TaneTest, ApproximateModeToleratesNoise) {
  Table t{Schema({"x", "y"})};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(0, 9);
    // 5% of the y cells violate x -> y.
    const int64_t y = rng.NextBernoulli(0.05) ? rng.NextInt(0, 9) : x;
    t.AppendRow({Value(x), Value(y)});
  }
  TaneOptions exact;
  auto strict = DiscoverTane(t, exact);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(ContainsFd(*strict, {0}, 1));
  TaneOptions tolerant;
  tolerant.max_error = 0.08;
  auto approx = DiscoverTane(t, tolerant);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(ContainsFd(*approx, {0}, 1));
}

TEST(TaneTest, RecallsAllPlantedSyntheticFds) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 10;
  config.seed = 2;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverTane(ds->clean, {});
  ASSERT_TRUE(fds.ok());
  FdScore score = ScoreFds(*fds, ds->true_fds);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  // And, as the paper reports, TANE heavily overfits:
  EXPECT_GT(fds->size(), ds->true_fds.size());
}

TEST(TaneTest, LhsSizeCapRespected) {
  SyntheticConfig config;
  config.num_tuples = 300;
  config.num_attributes = 8;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TaneOptions options;
  options.max_lhs_size = 2;
  auto fds = DiscoverTane(ds->clean, options);
  ASSERT_TRUE(fds.ok());
  for (const auto& fd : *fds) {
    EXPECT_LE(fd.lhs.size(), 2u);
  }
}

TEST(TaneTest, TimeBudgetTriggersTimeout) {
  SyntheticConfig config;
  config.num_tuples = 5000;
  config.num_attributes = 30;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TaneOptions options;
  options.time_budget_seconds = 1e-6;
  auto fds = DiscoverTane(ds->clean, options);
  ASSERT_FALSE(fds.ok());
  EXPECT_EQ(fds.status().code(), StatusCode::kTimeout);
}

TEST(TaneTest, RejectsEmptyTable) {
  Table t;
  EXPECT_FALSE(DiscoverTane(t, {}).ok());
}

TEST(TaneTest, NullsDoNotFabricateFds) {
  // With strict null semantics, a column of nulls determines nothing.
  Table t = TableFromCsv("x,y\n,a\n,b\n,c\n,d\n");
  auto fds = DiscoverTane(t, {});
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(ContainsFd(*fds, {0}, 1));
}

}  // namespace
}  // namespace fdx
