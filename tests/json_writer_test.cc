#include <gtest/gtest.h>

#include <cstdio>

#include "util/json_writer.h"

namespace fdx {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter a;
  a.BeginObject();
  a.EndObject();
  EXPECT_EQ(a.TakeString(), "{}");
  JsonWriter b;
  b.BeginArray();
  b.EndArray();
  EXPECT_EQ(b.TakeString(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name");
  json.String("fdx");
  json.Key("count");
  json.Integer(42);
  json.Key("score");
  json.Number(0.5);
  json.Key("ok");
  json.Bool(true);
  json.Key("missing");
  json.Null();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"name\":\"fdx\",\"count\":42,\"score\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("fds");
  json.BeginArray();
  json.BeginObject();
  json.Key("lhs");
  json.BeginArray();
  json.String("a");
  json.String("b");
  json.EndArray();
  json.EndObject();
  json.BeginObject();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"fds\":[{\"lhs\":[\"a\",\"b\"]},{}]}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(1.0 / 0.0);
  json.Number(-1.0 / 0.0);
  json.Number(0.0 / 0.0);
  json.Number(1.5);
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, EscapesEveryControlCharacter) {
  // The full C0 sweep: named escapes where RFC 8259 defines them,
  // \u00XX for the rest — every byte below 0x20 must be escaped.
  const struct {
    char byte;
    const char* expected;
  } named[] = {{'\b', "\\b"}, {'\f', "\\f"}, {'\n', "\\n"},
               {'\r', "\\r"}, {'\t', "\\t"}};
  for (const auto& c : named) {
    EXPECT_EQ(JsonWriter::Escape(std::string(1, c.byte)), c.expected);
  }
  for (int c = 1; c < 0x20; ++c) {
    if (c == '\b' || c == '\f' || c == '\n' || c == '\r' || c == '\t') {
      continue;
    }
    char expected[8];
    std::snprintf(expected, sizeof(expected), "\\u%04x", c);
    EXPECT_EQ(JsonWriter::Escape(std::string(1, static_cast<char>(c))),
              expected)
        << "byte " << c;
  }
}

TEST(JsonWriterTest, Utf8PassesThroughByteExact) {
  // Multi-byte UTF-8 must survive untouched: é (2 bytes), 中 (3 bytes),
  // 😀 (4 bytes), and a lone high byte (invalid UTF-8 — still passed
  // through; the writer escapes, it does not validate).
  const std::string utf8 = "\xC3\xA9\xE4\xB8\xAD\xF0\x9F\x98\x80\xFF";
  EXPECT_EQ(JsonWriter::Escape(utf8), utf8);
}

TEST(JsonWriterTest, EscapedStringsStayInsideDocuments) {
  JsonWriter json;
  json.BeginObject();
  json.Key("cell");
  json.String("a\x01"
              "b\ttab \"quoted\" \xC3\xA9");
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"cell\":\"a\\u0001b\\ttab \\\"quoted\\\" \xC3\xA9\"}");
}

}  // namespace
}  // namespace fdx
