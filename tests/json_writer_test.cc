#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace fdx {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter a;
  a.BeginObject();
  a.EndObject();
  EXPECT_EQ(a.TakeString(), "{}");
  JsonWriter b;
  b.BeginArray();
  b.EndArray();
  EXPECT_EQ(b.TakeString(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name");
  json.String("fdx");
  json.Key("count");
  json.Integer(42);
  json.Key("score");
  json.Number(0.5);
  json.Key("ok");
  json.Bool(true);
  json.Key("missing");
  json.Null();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"name\":\"fdx\",\"count\":42,\"score\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("fds");
  json.BeginArray();
  json.BeginObject();
  json.Key("lhs");
  json.BeginArray();
  json.String("a");
  json.String("b");
  json.EndArray();
  json.EndObject();
  json.BeginObject();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"fds\":[{\"lhs\":[\"a\",\"b\"]},{}]}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(1.0 / 0.0);
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[null]");
}

}  // namespace
}  // namespace fdx
