#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/pyro.h"
#include "baselines/tane.h"
#include "fd/fd.h"
#include "fd/partition.h"
#include "synth/generator.h"

namespace fdx {
namespace {

/// Brute-force oracle: all minimal non-trivial exact FDs with LHS size
/// up to `max_lhs`, by direct enumeration and validation.
FdSet BruteForceMinimalFds(const EncodedTable& table, size_t max_lhs) {
  const size_t k = table.num_columns();
  std::vector<std::vector<size_t>> subsets;
  std::vector<size_t> current;
  auto enumerate = [&](auto&& self, size_t start) -> void {
    if (!current.empty()) subsets.push_back(current);
    if (current.size() >= max_lhs) return;
    for (size_t a = start; a < k; ++a) {
      current.push_back(a);
      self(self, a + 1);
      current.pop_back();
    }
  };
  enumerate(enumerate, 0);
  // Smaller subsets first so minimality is a simple containment check.
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  FdSet minimal;
  for (size_t rhs = 0; rhs < k; ++rhs) {
    std::vector<std::vector<size_t>> winners;
    for (const auto& lhs : subsets) {
      if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
      bool superset_of_winner = false;
      for (const auto& winner : winners) {
        if (std::includes(lhs.begin(), lhs.end(), winner.begin(),
                          winner.end())) {
          superset_of_winner = true;
          break;
        }
      }
      if (superset_of_winner) continue;
      if (FdHoldsExactly(table, FunctionalDependency(lhs, rhs))) {
        winners.push_back(lhs);
        minimal.emplace_back(lhs, rhs);
      }
    }
  }
  return minimal;
}

std::set<std::string> Render(const FdSet& fds, const Schema& schema) {
  std::set<std::string> out;
  for (const auto& fd : fds) out.insert(fd.ToString(schema));
  return out;
}

class CrossMethodTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossMethodTest, TaneMatchesBruteForceOracle) {
  SyntheticConfig config;
  config.num_tuples = 120;  // small so superkey LHS sets stay rare
  config.num_attributes = 5;
  config.domain_min = 4;
  config.domain_max = 8;
  config.seed = GetParam();
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  const EncodedTable encoded = EncodedTable::Encode(ds->clean);

  TaneOptions options;
  options.max_lhs_size = 3;
  auto tane = DiscoverTane(ds->clean, options);
  ASSERT_TRUE(tane.ok());

  FdSet oracle = BruteForceMinimalFds(encoded, 3);
  // TANE additionally skips superkey LHS sets (see tane.cc); drop them
  // from the oracle for the comparison.
  FdSet comparable_oracle;
  for (const auto& fd : oracle) {
    StrippedPartition lhs_partition =
        StrippedPartition::FromColumn(encoded, fd.lhs[0]);
    for (size_t i = 1; i < fd.lhs.size(); ++i) {
      lhs_partition = StrippedPartition::Multiply(
          lhs_partition, StrippedPartition::FromColumn(encoded, fd.lhs[i]));
    }
    if (!lhs_partition.IsSuperKey()) comparable_oracle.push_back(fd);
  }
  EXPECT_EQ(Render(*tane, ds->clean.schema()),
            Render(comparable_oracle, ds->clean.schema()));
}

TEST_P(CrossMethodTest, PyroFindsSubsetOfTaneAndAllUnaryFds) {
  SyntheticConfig config;
  config.num_tuples = 200;
  config.num_attributes = 6;
  config.domain_min = 4;
  config.domain_max = 10;
  config.seed = GetParam() + 100;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  TaneOptions tane_options;
  tane_options.max_lhs_size = 3;
  auto tane = DiscoverTane(ds->clean, tane_options);
  ASSERT_TRUE(tane.ok());

  PyroOptions pyro_options;
  pyro_options.max_error = 0.0;
  pyro_options.max_lhs_size = 3;
  auto pyro = DiscoverPyro(ds->clean, pyro_options);
  ASSERT_TRUE(pyro.ok());

  const auto tane_set = Render(*tane, ds->clean.schema());
  // Every PYRO FD must be minimal and exact, i.e. in TANE's output
  // (unless its LHS is a superkey, which TANE skips).
  const EncodedTable encoded = EncodedTable::Encode(ds->clean);
  for (const auto& fd : *pyro) {
    StrippedPartition lhs_partition =
        StrippedPartition::FromColumn(encoded, fd.lhs[0]);
    for (size_t i = 1; i < fd.lhs.size(); ++i) {
      lhs_partition = StrippedPartition::Multiply(
          lhs_partition, StrippedPartition::FromColumn(encoded, fd.lhs[i]));
    }
    if (lhs_partition.IsSuperKey()) continue;
    EXPECT_TRUE(tane_set.count(fd.ToString(ds->clean.schema())) > 0)
        << "PYRO found " << fd.ToString(ds->clean.schema())
        << " which TANE did not";
  }
  // PYRO's single-attribute launchpads guarantee every *unary* minimal
  // FD is found.
  for (const auto& fd : *tane) {
    if (fd.lhs.size() != 1) continue;
    EXPECT_TRUE(std::find(pyro->begin(), pyro->end(), fd) != pyro->end())
        << "PYRO missed unary " << fd.ToString(ds->clean.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossMethodTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fdx
