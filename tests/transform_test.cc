#include <gtest/gtest.h>

#include <cmath>

#include "core/transform.h"
#include "data/csv.h"
#include "linalg/stats.h"
#include "synth/generator.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(TransformTest, OutputIsBinaryWithExpectedShape) {
  Table t = TableFromCsv("a,b\n1,x\n2,y\n1,x\n3,z\n");
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  // Algorithm 2: n pairs per attribute.
  EXPECT_EQ(dt->rows(), 4u * 2u);
  EXPECT_EQ(dt->cols(), 2u);
  for (size_t i = 0; i < dt->rows(); ++i) {
    for (size_t j = 0; j < dt->cols(); ++j) {
      const double v = (*dt)(i, j);
      EXPECT_TRUE(v == 0.0 || v == 1.0);
    }
  }
}

TEST(TransformTest, RejectsDegenerateInputs) {
  Table empty{Schema({"a"})};
  EXPECT_FALSE(PairTransform(empty).ok());
  Table one_row{Schema({"a"})};
  one_row.AppendRow({Value(int64_t{1})});
  EXPECT_FALSE(PairTransform(one_row).ok());
  EXPECT_FALSE(PairTransformMoments(empty).ok());
}

TEST(TransformTest, ConstantColumnAlwaysAgrees) {
  Table t = TableFromCsv("c,v\nk,1\nk,2\nk,3\nk,4\n");
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  for (size_t i = 0; i < dt->rows(); ++i) {
    EXPECT_DOUBLE_EQ((*dt)(i, 0), 1.0);
  }
}

TEST(TransformTest, NullNeverAgrees) {
  Table t = TableFromCsv("a\n\n\n\n\n");  // all nulls
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  for (size_t i = 0; i < dt->rows(); ++i) {
    EXPECT_DOUBLE_EQ((*dt)(i, 0), 0.0);
  }
}

TEST(TransformTest, FdImpliesConditionalAgreement) {
  // On clean data with FD x -> y, any pair that agrees on x agrees on y.
  SyntheticConfig config;
  config.num_tuples = 400;
  config.num_attributes = 6;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto dt = PairTransform(ds->clean);
  ASSERT_TRUE(dt.ok());
  for (const auto& fd : ds->true_fds) {
    for (size_t i = 0; i < dt->rows(); ++i) {
      bool lhs_agrees = true;
      for (size_t x : fd.lhs) {
        if ((*dt)(i, x) == 0.0) {
          lhs_agrees = false;
          break;
        }
      }
      if (lhs_agrees) {
        EXPECT_DOUBLE_EQ((*dt)(i, fd.rhs), 1.0);
      }
    }
  }
}

TEST(TransformTest, MomentsMatchMaterializedTransform) {
  Table t = TableFromCsv("a,b,c\n1,x,p\n2,y,p\n1,x,q\n3,y,q\n2,x,p\n");
  TransformOptions options;
  options.seed = 99;
  auto dt = PairTransform(t, options);
  auto moments = PairTransformMoments(t, options);
  ASSERT_TRUE(dt.ok());
  ASSERT_TRUE(moments.ok());
  EXPECT_EQ(moments->num_samples, dt->rows());
  Vector mean = ColumnMeans(*dt);
  auto cov = Covariance(*dt);
  ASSERT_TRUE(cov.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(moments->mean[j], mean[j], 1e-12);
  }
  EXPECT_LT(moments->cov.Subtract(*cov).MaxAbs(), 1e-12);
}

TEST(TransformTest, SamplingCapLimitsRows) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 5;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions options;
  options.max_pairs_per_attribute = 100;
  auto dt = PairTransform(ds->clean, options);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->rows(), 100u * 5u);
}

TEST(TransformTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_tuples = 100;
  config.num_attributes = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions options;
  options.seed = 21;
  auto a = PairTransformMoments(ds->clean, options);
  auto b = PairTransformMoments(ds->clean, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->cov.Subtract(b->cov).MaxAbs(), 1e-15);
}

TEST(TransformTest, PooledCovarianceRemovesPassArtifact) {
  // Independent attributes: the concatenated estimator shows a uniform
  // negative coupling (the per-pass mean shift of the sorted column);
  // the pooled estimator does not.
  Table t{Schema({"a", "b", "c", "d"})};
  Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9)),
                 Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9))});
  }
  TransformOptions concatenated;
  auto plain = PairTransformMoments(t, concatenated);
  ASSERT_TRUE(plain.ok());
  TransformOptions pooled = concatenated;
  pooled.pooled_covariance = true;
  auto within = PairTransformMoments(t, pooled);
  ASSERT_TRUE(within.ok());
  double plain_offdiag = 0.0, pooled_offdiag = 0.0;
  for (size_t x = 0; x < 4; ++x) {
    for (size_t y = x + 1; y < 4; ++y) {
      plain_offdiag += std::fabs(plain->cov(x, y));
      pooled_offdiag += std::fabs(within->cov(x, y));
    }
  }
  EXPECT_GT(plain_offdiag, 5.0 * pooled_offdiag);
}

TEST(TransformTest, PooledCovarianceKeepsFdSignal) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 8;
  config.seed = 7;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions pooled;
  pooled.pooled_covariance = true;
  auto moments = PairTransformMoments(ds->clean, pooled);
  ASSERT_TRUE(moments.ok());
  // Every planted FD keeps positive covariance between its determinant
  // and dependent indicators.
  for (const auto& fd : ds->true_fds) {
    for (size_t x : fd.lhs) {
      EXPECT_GT(moments->cov(x, fd.rhs), 0.0)
          << "cov(" << x << "," << fd.rhs << ")";
    }
  }
}

TEST(TransformTest, SortedColumnHasHighAgreement) {
  // The sort-and-shift construction makes pairs agree on the sorted
  // attribute far more often than random pairing would.
  Table t{Schema({"x"})};
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9))});
  }
  auto moments = PairTransformMoments(t);
  ASSERT_TRUE(moments.ok());
  // Random pairs agree w.p. ~0.1; sorted adjacent pairs ~0.99.
  EXPECT_GT(moments->mean[0], 0.9);
}

}  // namespace
}  // namespace fdx
