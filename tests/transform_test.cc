#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/pairs.h"
#include "core/transform.h"
#include "data/csv.h"
#include "linalg/stats.h"
#include "synth/generator.h"
#include "util/reservoir.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

// ---------------------------------------------------------------------------
// Scalar reference implementation of Algorithm 2, kept verbatim from the
// pre-packed engine (std::stable_sort + materialized pair vectors +
// double-by-double accumulation). The packed kernels must reproduce it
// *bitwise*: same pair order, same integer counts, same derived doubles.

std::vector<std::pair<size_t, size_t>> RefPairsForAttribute(
    const EncodedTable& encoded, const std::vector<size_t>& shuffled,
    size_t attr, size_t max_pairs, uint64_t attr_seed) {
  std::vector<size_t> order = shuffled;
  const auto& codes = encoded.column_codes(attr);
  std::stable_sort(order.begin(), order.end(),
                   [&codes](size_t a, size_t b) { return codes[a] < codes[b]; });
  const size_t n = order.size();
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n < 2) return pairs;
  if (max_pairs == 0 || max_pairs >= n) {
    pairs.reserve(n);
    for (size_t j = 0; j + 1 < n; ++j) pairs.emplace_back(order[j], order[j + 1]);
    pairs.emplace_back(order[n - 1], order[0]);
    return pairs;
  }
  // Sampled variant: the engine draws max_pairs sorted positions from a
  // seeded reservoir (Algorithm R) and emits them ascending.
  pairs.reserve(max_pairs);
  ReservoirSampler sampler(max_pairs, attr_seed);
  sampler.AddRange(0, static_cast<uint32_t>(n));
  for (uint32_t j : sampler.Sorted()) {
    const size_t next = j + 1 == n ? 0 : j + 1;
    pairs.emplace_back(order[j], order[next]);
  }
  return pairs;
}

uint8_t RefEqualCodes(int32_t a, int32_t b) {
  return (a != EncodedTable::kNullCode && a == b) ? 1 : 0;
}

struct RefSetup {
  EncodedTable encoded;
  std::vector<size_t> shuffled;
  std::vector<uint64_t> attr_seeds;
};

RefSetup MakeRefSetup(const Table& table, const TransformOptions& options) {
  RefSetup setup;
  setup.encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  setup.shuffled.resize(table.num_rows());
  std::iota(setup.shuffled.begin(), setup.shuffled.end(), 0);
  rng.Shuffle(&setup.shuffled);
  setup.attr_seeds.resize(table.num_columns());
  for (size_t attr = 0; attr < setup.attr_seeds.size(); ++attr) {
    setup.attr_seeds[attr] = rng.engine()();
  }
  return setup;
}

Matrix RefTransform(const Table& table, const TransformOptions& options) {
  const RefSetup setup = MakeRefSetup(table, options);
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  const size_t per_attr =
      (options.max_pairs_per_attribute == 0 ||
       options.max_pairs_per_attribute >= n)
          ? n
          : options.max_pairs_per_attribute;
  Matrix out(per_attr * k, k);
  for (size_t attr = 0; attr < k; ++attr) {
    const auto pairs = RefPairsForAttribute(
        setup.encoded, setup.shuffled, attr, options.max_pairs_per_attribute,
        setup.attr_seeds[attr]);
    size_t row = attr * per_attr;
    for (const auto& [a, b] : pairs) {
      double* out_row = out.RowPtr(row++);
      for (size_t c = 0; c < k; ++c) {
        out_row[c] =
            RefEqualCodes(setup.encoded.code(a, c), setup.encoded.code(b, c));
      }
    }
  }
  return out;
}

struct RefMomentsResult {
  std::vector<uint64_t> counts;
  std::vector<uint64_t> co_counts;
  size_t total = 0;
  Vector mean;
  Matrix cov;
};

RefMomentsResult RefMoments(const Table& table,
                            const TransformOptions& options) {
  const RefSetup setup = MakeRefSetup(table, options);
  const size_t k = table.num_columns();
  RefMomentsResult ref;
  ref.counts.assign(k, 0);
  ref.co_counts.assign(k * k, 0);
  std::vector<uint64_t> pass_counts(k, 0);
  std::vector<uint64_t> pass_co_counts(k * k, 0);
  std::vector<Matrix> pass_cov(k);
  std::vector<size_t> ones;
  for (size_t attr = 0; attr < k; ++attr) {
    const auto pairs = RefPairsForAttribute(
        setup.encoded, setup.shuffled, attr, options.max_pairs_per_attribute,
        setup.attr_seeds[attr]);
    std::fill(pass_counts.begin(), pass_counts.end(), 0);
    std::fill(pass_co_counts.begin(), pass_co_counts.end(), 0);
    for (const auto& [a, b] : pairs) {
      ones.clear();
      for (size_t c = 0; c < k; ++c) {
        if (RefEqualCodes(setup.encoded.code(a, c), setup.encoded.code(b, c))) {
          ones.push_back(c);
        }
      }
      for (size_t x : ones) {
        ++ref.counts[x];
        ++pass_counts[x];
        for (size_t y : ones) {
          if (y < x) continue;
          ++ref.co_counts[x * k + y];
          ++pass_co_counts[x * k + y];
        }
      }
    }
    ref.total += pairs.size();
    if (options.pooled_covariance && !pairs.empty()) {
      Matrix cov(k, k);
      const double inv_pass = 1.0 / static_cast<double>(pairs.size());
      for (size_t x = 0; x < k; ++x) {
        const double mean_x = static_cast<double>(pass_counts[x]) * inv_pass;
        for (size_t y = x; y < k; ++y) {
          const double mean_y = static_cast<double>(pass_counts[y]) * inv_pass;
          const double exy =
              static_cast<double>(pass_co_counts[x * k + y]) * inv_pass;
          const double value = exy - mean_x * mean_y;
          cov(x, y) = value;
          cov(y, x) = value;
        }
      }
      pass_cov[attr] = std::move(cov);
    }
  }
  ref.mean.assign(k, 0.0);
  const double inv_n = 1.0 / static_cast<double>(ref.total);
  for (size_t c = 0; c < k; ++c) {
    ref.mean[c] = static_cast<double>(ref.counts[c]) * inv_n;
  }
  if (options.pooled_covariance) {
    Matrix pooled(k, k);
    size_t passes = 0;
    for (size_t attr = 0; attr < k; ++attr) {
      if (pass_cov[attr].empty()) continue;
      pooled = pooled.Add(pass_cov[attr]);
      ++passes;
    }
    ref.cov = pooled.Scale(1.0 / static_cast<double>(passes));
    return ref;
  }
  ref.cov = Matrix(k, k);
  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x; y < k; ++y) {
      const double exy =
          static_cast<double>(ref.co_counts[x * k + y]) * inv_n;
      const double value = exy - ref.mean[x] * ref.mean[y];
      ref.cov(x, y) = value;
      ref.cov(y, x) = value;
    }
  }
  return ref;
}

/// A table with ties (small domain) and ~15% nulls, the adversarial
/// regime for the sort's stability and the null-never-matches rule.
Table NoisyTiedTable(size_t rows, size_t cols, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("a" + std::to_string(c));
  Table t{Schema(std::move(names))};
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBernoulli(0.15)) {
        row.emplace_back();  // null
      } else {
        row.emplace_back(Value(rng.NextInt(0, 3)));  // heavy ties
      }
    }
    t.AppendRow(std::move(row));
  }
  return t;
}

TEST(TransformTest, OutputIsBinaryWithExpectedShape) {
  Table t = TableFromCsv("a,b\n1,x\n2,y\n1,x\n3,z\n");
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  // Algorithm 2: n pairs per attribute.
  EXPECT_EQ(dt->rows(), 4u * 2u);
  EXPECT_EQ(dt->cols(), 2u);
  for (size_t i = 0; i < dt->rows(); ++i) {
    for (size_t j = 0; j < dt->cols(); ++j) {
      const double v = (*dt)(i, j);
      EXPECT_TRUE(v == 0.0 || v == 1.0);
    }
  }
}

TEST(TransformTest, RejectsDegenerateInputs) {
  Table empty{Schema({"a"})};
  EXPECT_FALSE(PairTransform(empty).ok());
  Table one_row{Schema({"a"})};
  one_row.AppendRow({Value(int64_t{1})});
  EXPECT_FALSE(PairTransform(one_row).ok());
  EXPECT_FALSE(PairTransformMoments(empty).ok());
}

TEST(TransformTest, ConstantColumnAlwaysAgrees) {
  Table t = TableFromCsv("c,v\nk,1\nk,2\nk,3\nk,4\n");
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  for (size_t i = 0; i < dt->rows(); ++i) {
    EXPECT_DOUBLE_EQ((*dt)(i, 0), 1.0);
  }
}

TEST(TransformTest, NullNeverAgrees) {
  Table t = TableFromCsv("a\n\n\n\n\n");  // all nulls
  auto dt = PairTransform(t);
  ASSERT_TRUE(dt.ok());
  for (size_t i = 0; i < dt->rows(); ++i) {
    EXPECT_DOUBLE_EQ((*dt)(i, 0), 0.0);
  }
}

TEST(TransformTest, FdImpliesConditionalAgreement) {
  // On clean data with FD x -> y, any pair that agrees on x agrees on y.
  SyntheticConfig config;
  config.num_tuples = 400;
  config.num_attributes = 6;
  config.seed = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto dt = PairTransform(ds->clean);
  ASSERT_TRUE(dt.ok());
  for (const auto& fd : ds->true_fds) {
    for (size_t i = 0; i < dt->rows(); ++i) {
      bool lhs_agrees = true;
      for (size_t x : fd.lhs) {
        if ((*dt)(i, x) == 0.0) {
          lhs_agrees = false;
          break;
        }
      }
      if (lhs_agrees) {
        EXPECT_DOUBLE_EQ((*dt)(i, fd.rhs), 1.0);
      }
    }
  }
}

TEST(TransformTest, MomentsMatchMaterializedTransform) {
  Table t = TableFromCsv("a,b,c\n1,x,p\n2,y,p\n1,x,q\n3,y,q\n2,x,p\n");
  TransformOptions options;
  options.seed = 99;
  auto dt = PairTransform(t, options);
  auto moments = PairTransformMoments(t, options);
  ASSERT_TRUE(dt.ok());
  ASSERT_TRUE(moments.ok());
  EXPECT_EQ(moments->num_samples, dt->rows());
  Vector mean = ColumnMeans(*dt);
  auto cov = Covariance(*dt);
  ASSERT_TRUE(cov.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(moments->mean[j], mean[j], 1e-12);
  }
  EXPECT_LT(moments->cov.Subtract(*cov).MaxAbs(), 1e-12);
}

TEST(TransformTest, SamplingCapLimitsRows) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 5;
  config.seed = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions options;
  options.max_pairs_per_attribute = 100;
  auto dt = PairTransform(ds->clean, options);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->rows(), 100u * 5u);
}

TEST(TransformTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_tuples = 100;
  config.num_attributes = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions options;
  options.seed = 21;
  auto a = PairTransformMoments(ds->clean, options);
  auto b = PairTransformMoments(ds->clean, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->cov.Subtract(b->cov).MaxAbs(), 1e-15);
}

TEST(TransformTest, PooledCovarianceRemovesPassArtifact) {
  // Independent attributes: the concatenated estimator shows a uniform
  // negative coupling (the per-pass mean shift of the sorted column);
  // the pooled estimator does not.
  Table t{Schema({"a", "b", "c", "d"})};
  Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9)),
                 Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 9))});
  }
  TransformOptions concatenated;
  auto plain = PairTransformMoments(t, concatenated);
  ASSERT_TRUE(plain.ok());
  TransformOptions pooled = concatenated;
  pooled.pooled_covariance = true;
  auto within = PairTransformMoments(t, pooled);
  ASSERT_TRUE(within.ok());
  double plain_offdiag = 0.0, pooled_offdiag = 0.0;
  for (size_t x = 0; x < 4; ++x) {
    for (size_t y = x + 1; y < 4; ++y) {
      plain_offdiag += std::fabs(plain->cov(x, y));
      pooled_offdiag += std::fabs(within->cov(x, y));
    }
  }
  EXPECT_GT(plain_offdiag, 5.0 * pooled_offdiag);
}

TEST(TransformTest, PooledCovarianceKeepsFdSignal) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 8;
  config.seed = 7;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  TransformOptions pooled;
  pooled.pooled_covariance = true;
  auto moments = PairTransformMoments(ds->clean, pooled);
  ASSERT_TRUE(moments.ok());
  // Every planted FD keeps positive covariance between its determinant
  // and dependent indicators.
  for (const auto& fd : ds->true_fds) {
    for (size_t x : fd.lhs) {
      EXPECT_GT(moments->cov(x, fd.rhs), 0.0)
          << "cov(" << x << "," << fd.rhs << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-vs-scalar exact equivalence. k sweeps across the uint64 word
// boundaries (1, 63, 64, 65, 130) and n = 130 puts every column
// bit-vector at just over two words per pass, so partial trailing words,
// nulls, and tie groups are all exercised.

class PackedEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PackedEquivalenceTest, MatrixMomentsAndCountsMatchScalarBitwise) {
  const size_t k = GetParam();
  const size_t n = 130;
  const Table t = NoisyTiedTable(n, k, /*seed=*/1000 + k);
  for (size_t max_pairs : {size_t{0}, size_t{37}, size_t{64}}) {
    TransformOptions options;
    options.seed = 17 + k;
    options.max_pairs_per_attribute = max_pairs;

    const Matrix ref_matrix = RefTransform(t, options);
    auto matrix = PairTransform(t, options);
    ASSERT_TRUE(matrix.ok());
    ASSERT_EQ(matrix->rows(), ref_matrix.rows());
    ASSERT_EQ(matrix->cols(), ref_matrix.cols());
    EXPECT_EQ(matrix->Subtract(ref_matrix).MaxAbs(), 0.0)
        << "k=" << k << " max_pairs=" << max_pairs;

    auto packed = PairTransformPacked(t, options);
    ASSERT_TRUE(packed.ok());
    ASSERT_EQ(packed->rows(), ref_matrix.rows());
    for (size_t r = 0; r < packed->rows(); ++r) {
      for (size_t c = 0; c < k; ++c) {
        ASSERT_EQ(packed->Get(r, c) ? 1.0 : 0.0, ref_matrix(r, c))
            << "bit (" << r << "," << c << ") k=" << k
            << " max_pairs=" << max_pairs;
      }
    }

    const RefMomentsResult ref = RefMoments(t, options);
    auto counts = PairTransformCounts(t, options);
    ASSERT_TRUE(counts.ok());
    EXPECT_EQ(counts->num_samples, ref.total);
    EXPECT_EQ(counts->counts, ref.counts);
    EXPECT_EQ(counts->co_counts, ref.co_counts);

    auto moments = PairTransformMoments(t, options);
    ASSERT_TRUE(moments.ok());
    EXPECT_EQ(moments->num_samples, ref.total);
    for (size_t c = 0; c < k; ++c) {
      EXPECT_EQ(moments->mean[c], ref.mean[c]);
    }
    EXPECT_EQ(moments->cov.Subtract(ref.cov).MaxAbs(), 0.0)
        << "k=" << k << " max_pairs=" << max_pairs;

    // The packed covariance kernel in linalg forms the same integer
    // moments, so it must agree with the streamed moments bitwise.
    auto packed_cov = Covariance(*packed, /*threads=*/1);
    ASSERT_TRUE(packed_cov.ok());
    EXPECT_EQ(packed_cov->Subtract(moments->cov).MaxAbs(), 0.0);
  }
}

TEST_P(PackedEquivalenceTest, PooledCovarianceMatchesScalarBitwise) {
  const size_t k = GetParam();
  const Table t = NoisyTiedTable(130, k, /*seed=*/2000 + k);
  TransformOptions options;
  options.seed = 29 + k;
  options.pooled_covariance = true;
  const RefMomentsResult ref = RefMoments(t, options);
  auto moments = PairTransformMoments(t, options);
  ASSERT_TRUE(moments.ok());
  EXPECT_EQ(moments->cov.Subtract(ref.cov).MaxAbs(), 0.0) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, PackedEquivalenceTest,
                         ::testing::Values(1, 63, 64, 65, 130));

TEST(TransformTest, CountingSortMatchesStableSort) {
  // The radix pass must reproduce std::stable_sort's permutation exactly:
  // nulls first, codes ascending, shuffle preserved inside tie groups.
  const Table t = NoisyTiedTable(257, 3, /*seed=*/7);
  const EncodedTable encoded = EncodedTable::Encode(t);
  Rng rng(123);
  std::vector<uint32_t> shuffled(t.num_rows());
  std::iota(shuffled.begin(), shuffled.end(), 0);
  rng.Shuffle(&shuffled);
  for (size_t attr = 0; attr < t.num_columns(); ++attr) {
    std::vector<uint32_t> order;
    std::vector<uint32_t> buckets;
    StableSortByCodes(encoded.column_codes(attr), encoded.Cardinality(attr),
                      shuffled, &order, &buckets);
    std::vector<uint32_t> expected = shuffled;
    const auto& codes = encoded.column_codes(attr);
    std::stable_sort(
        expected.begin(), expected.end(),
        [&codes](uint32_t a, uint32_t b) { return codes[a] < codes[b]; });
    EXPECT_EQ(order, expected) << "attr " << attr;
  }
}

TEST(TransformTest, AttributePassEnumeratesWithoutMaterializing) {
  const Table t = NoisyTiedTable(97, 2, /*seed=*/11);
  const EncodedTable encoded = EncodedTable::Encode(t);
  std::vector<uint32_t> shuffled(t.num_rows());
  std::iota(shuffled.begin(), shuffled.end(), 0);
  AttributePass pass;
  pass.Reset(encoded, shuffled, /*attr=*/0, /*max_pairs=*/0, /*seed=*/1);
  EXPECT_EQ(pass.num_pairs(), t.num_rows());
  size_t calls = 0;
  size_t last_index = 0;
  pass.ForEachPair([&](size_t i, size_t a, size_t b) {
    EXPECT_LT(a, t.num_rows());
    EXPECT_LT(b, t.num_rows());
    last_index = i;
    ++calls;
  });
  EXPECT_EQ(calls, pass.num_pairs());
  EXPECT_EQ(last_index, pass.num_pairs() - 1);

  pass.Reset(encoded, shuffled, /*attr=*/1, /*max_pairs=*/13, /*seed=*/2);
  EXPECT_TRUE(pass.sampled());
  EXPECT_EQ(pass.num_pairs(), 13u);
}

TEST(TransformTest, PackedRejectsDegenerateInputs) {
  Table empty{Schema({"a"})};
  EXPECT_FALSE(PairTransformPacked(empty).ok());
  EXPECT_FALSE(PairTransformCounts(empty).ok());
}

TEST(TransformTest, ProfileRecordsStageTimings) {
  const Table t = NoisyTiedTable(500, 6, /*seed=*/3);
  TransformProfile profile;
  TransformOptions options;
  options.profile = &profile;
  auto moments = PairTransformMoments(t, options);
  ASSERT_TRUE(moments.ok());
  EXPECT_GE(profile.sort_seconds, 0.0);
  EXPECT_GE(profile.pack_seconds, 0.0);
  EXPECT_GE(profile.accumulate_seconds, 0.0);
  EXPECT_GT(profile.sort_seconds + profile.pack_seconds +
                profile.accumulate_seconds,
            0.0);
}

TEST(TransformTest, SortedColumnHasHighAgreement) {
  // The sort-and-shift construction makes pairs agree on the sorted
  // attribute far more often than random pairing would.
  Table t{Schema({"x"})};
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 9))});
  }
  auto moments = PairTransformMoments(t);
  ASSERT_TRUE(moments.ok());
  // Random pairs agree w.p. ~0.1; sorted adjacent pairs ~0.99.
  EXPECT_GT(moments->mean[0], 0.9);
}

}  // namespace
}  // namespace fdx
