#include <gtest/gtest.h>

#include "core/fdx.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "linalg/glasso.h"
#include "synth/generator.h"
#include "util/fault_injection.h"

namespace fdx {
namespace {

/// A table with one planted unary FD (x -> y) and an independent column,
/// large enough for glasso to recover the structure cleanly.
Table FdTable(int rows = 2000) {
  Table t{Schema({"x", "y", "z"})};
  Rng rng(11);
  for (int i = 0; i < rows; ++i) {
    const int64_t x = rng.NextInt(0, 19);
    t.AppendRow({Value(x), Value((x * 7 + 3) % 20), Value(rng.NextInt(0, 19))});
  }
  return t;
}

/// Same planted FD plus a constant column — the quarantine candidate.
Table FdTableWithConstant(int rows = 2000) {
  Table t{Schema({"x", "y", "z", "konst"})};
  Rng rng(12);
  for (int i = 0; i < rows; ++i) {
    const int64_t x = rng.NextInt(0, 19);
    t.AppendRow({Value(x), Value((x * 7 + 3) % 20), Value(rng.NextInt(0, 19)),
                 Value(int64_t{5})});
  }
  return t;
}

bool HasFd(const FdSet& fds, size_t lhs, size_t rhs) {
  for (const auto& fd : fds) {
    if (fd.rhs == rhs && fd.lhs.size() == 1 && fd.lhs[0] == lhs) return true;
  }
  return false;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmFaults(); }
};

TEST_F(RecoveryTest, CleanRunHasCleanDiagnostics) {
  auto result = FdxDiscoverer().Discover(FdTable());
  ASSERT_TRUE(result.ok());
  const RunDiagnostics& diag = result->diagnostics;
  EXPECT_FALSE(diag.Degraded());
  EXPECT_EQ(diag.glasso_attempts, 1u);
  EXPECT_FALSE(diag.fallback_sequential);
  EXPECT_FALSE(diag.quarantined);
  EXPECT_TRUE(RenderRunDiagnostics(diag).empty());
}

TEST_F(RecoveryTest, GlassoFaultTriggersRidgeRetry) {
  ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + ":1").ok());
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(FdTable());
  ASSERT_TRUE(result.ok());
  const RunDiagnostics& diag = result->diagnostics;
  EXPECT_TRUE(diag.Degraded());
  EXPECT_EQ(diag.glasso_attempts, 2u);
  // The winning attempt ran with the escalated ridge (base 1e-6 x 10).
  EXPECT_NEAR(diag.ridge_used,
              discoverer.options().glasso.diagonal_ridge *
                  discoverer.options().recovery.ridge_multiplier,
              1e-12);
  EXPECT_FALSE(diag.fallback_sequential);
  ASSERT_FALSE(diag.events.empty());
  EXPECT_EQ(diag.events.back().action, "retry_ridge");
  // The salvaged run still finds the planted FD.
  EXPECT_TRUE(HasFd(result->fds, 0, 1));
}

TEST_F(RecoveryTest, UdutFaultTriggersRidgeRetry) {
  ASSERT_TRUE(ArmFaults(std::string(kFaultUdutPivot) + ":1").ok());
  auto result = FdxDiscoverer().Discover(FdTable());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->diagnostics.glasso_attempts, 2u);
  EXPECT_TRUE(HasFd(result->fds, 0, 1));
}

TEST_F(RecoveryTest, PersistentGlassoFaultFallsBackToSequentialLasso) {
  ASSERT_TRUE(ArmFaults(kFaultGlassoSweep).ok());  // every attempt diverges
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(FdTable());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunDiagnostics& diag = result->diagnostics;
  EXPECT_EQ(diag.glasso_attempts,
            discoverer.options().recovery.max_ridge_retries + 1);
  EXPECT_TRUE(diag.fallback_sequential);
  EXPECT_FALSE(diag.quarantined);
  EXPECT_TRUE(HasFd(result->fds, 0, 1));
  // The rendered diagnostics mention the fallback.
  const std::string rendered = RenderRunDiagnostics(diag);
  EXPECT_NE(rendered.find("sequential"), std::string::npos);
}

TEST_F(RecoveryTest, FullChainEndsInQuarantine) {
  // Glasso always diverges; the first sequential-lasso attempt dies too.
  // Recovery must quarantine the constant column and succeed on the rest.
  ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + "," +
                        kFaultSeqLassoColumn + ":1")
                  .ok());
  const Table table = FdTableWithConstant();
  auto result = FdxDiscoverer().Discover(table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunDiagnostics& diag = result->diagnostics;
  EXPECT_TRUE(diag.Degraded());
  EXPECT_TRUE(diag.fallback_sequential);
  EXPECT_TRUE(diag.quarantined);
  ASSERT_EQ(diag.quarantined_attributes.size(), 1u);
  EXPECT_EQ(diag.quarantined_attributes[0], 3u);  // "konst"
  // Quarantined attributes never appear in discovered FDs…
  for (const auto& fd : result->fds) {
    EXPECT_NE(fd.rhs, 3u);
    for (size_t lhs : fd.lhs) EXPECT_NE(lhs, 3u);
  }
  // …their matrix rows/columns are zeroed…
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result->autoregression(i, 3), 0.0);
    EXPECT_DOUBLE_EQ(result->autoregression(3, i), 0.0);
  }
  // …and the planted FD still comes out of the salvaged attributes.
  EXPECT_TRUE(HasFd(result->fds, 0, 1));
  // The event log records the whole ladder, in order.
  ASSERT_GE(diag.events.size(), 3u);
  bool saw_retry = false, saw_fallback = false, saw_quarantine = false;
  for (const auto& event : diag.events) {
    if (event.action == "retry_ridge") saw_retry = true;
    if (event.action == "fallback_sequential") saw_fallback = true;
    if (event.action == "rerun_without_degenerate") saw_quarantine = true;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_fallback);
  EXPECT_TRUE(saw_quarantine);
}

TEST_F(RecoveryTest, DisabledRecoveryFailsFast) {
  ASSERT_TRUE(ArmFaults(kFaultGlassoSweep).ok());
  FdxOptions options;
  options.recovery.enabled = false;
  auto result = FdxDiscoverer(options).Discover(FdTable());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
  EXPECT_NE(result.status().message().find("injected fault"),
            std::string::npos);
}

TEST_F(RecoveryTest, FallbackDisallowedPropagatesError) {
  ASSERT_TRUE(ArmFaults(kFaultGlassoSweep).ok());
  FdxOptions options;
  options.recovery.allow_estimator_fallback = false;
  options.recovery.allow_quarantine = false;
  auto result = FdxDiscoverer(options).Discover(FdTable());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST_F(RecoveryTest, SequentialEstimatorFaultWithoutQuarantineCandidates) {
  // No degenerate attributes to quarantine: the error must surface.
  ASSERT_TRUE(ArmFaults(kFaultSeqLassoColumn).ok());
  FdxOptions options;
  options.estimator = StructureEstimator::kSequentialLasso;
  auto result = FdxDiscoverer(options).Discover(FdTable());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST_F(RecoveryTest, UnarmedFaultBuildIsBitwiseDeterministic) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_attributes = 8;
  config.seed = 21;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  FdxDiscoverer discoverer;
  auto baseline = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(baseline.ok());

  // Arm a point that never fires, run, then disarm and run again: the
  // instrumentation must not perturb a single bit of the output.
  ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + ":999999").ok());
  auto armed = discoverer.Discover(ds->noisy);
  DisarmFaults();
  auto disarmed = discoverer.Discover(ds->noisy);
  ASSERT_TRUE(armed.ok());
  ASSERT_TRUE(disarmed.ok());

  for (const FdxResult* other : {&armed.value(), &disarmed.value()}) {
    ASSERT_EQ(other->fds.size(), baseline->fds.size());
    for (size_t f = 0; f < baseline->fds.size(); ++f) {
      EXPECT_EQ(other->fds[f].lhs, baseline->fds[f].lhs);
      EXPECT_EQ(other->fds[f].rhs, baseline->fds[f].rhs);
    }
    ASSERT_EQ(other->ordering, baseline->ordering);
    for (size_t i = 0; i < baseline->theta.rows(); ++i) {
      for (size_t j = 0; j < baseline->theta.cols(); ++j) {
        EXPECT_EQ(other->theta(i, j), baseline->theta(i, j));
        EXPECT_EQ(other->autoregression(i, j),
                  baseline->autoregression(i, j));
      }
    }
  }
}

TEST_F(RecoveryTest, TinyBudgetTimesOutQuickly) {
  FdxOptions options;
  options.time_budget_seconds = 1e-9;
  Stopwatch watch;
  auto result = FdxDiscoverer(options).Discover(FdTable(20000));
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(RecoveryTest, GlassoHonorsExpiredDeadline) {
  const Deadline deadline(1e-12);
  while (!deadline.Expired()) {
  }
  GlassoOptions options;
  options.deadline = &deadline;
  Matrix s = Matrix::Identity(4);
  s(0, 1) = s(1, 0) = 0.4;
  auto result = GraphicalLasso(s, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(RecoveryTest, RunnerReportsFdxTimeout) {
  RunnerConfig config;
  config.time_budget_seconds = 1e-9;
  RunOutcome outcome = RunMethod(MethodId::kFdx, FdTable(20000), config);
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.timeout) << outcome.error;
}

TEST_F(RecoveryTest, RunnerCapturesInjectedFdxError) {
  ASSERT_TRUE(ArmFaults(kFaultGlassoSweep).ok());
  RunnerConfig config;
  config.fdx.recovery.enabled = false;
  RunOutcome outcome = RunMethod(MethodId::kFdx, FdTable(), config);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.timeout);
  EXPECT_NE(outcome.error.find("injected fault"), std::string::npos);
}

TEST_F(RecoveryTest, DiagnosticsSerializeToJson) {
  ASSERT_TRUE(ArmFaults(std::string(kFaultGlassoSweep) + ":1").ok());
  auto result = FdxDiscoverer().Discover(FdTable());
  ASSERT_TRUE(result.ok());
  JsonWriter json;
  WriteRunDiagnosticsJson(&json, result->diagnostics, {"x", "y", "z"});
  const std::string out = json.TakeString();
  EXPECT_NE(out.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(out.find("\"glasso_attempts\":2"), std::string::npos);
  EXPECT_NE(out.find("retry_ridge"), std::string::npos);
}

}  // namespace
}  // namespace fdx
