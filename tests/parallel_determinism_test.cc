// Determinism contract of the parallel substrate: every FDX pipeline
// stage must produce bit-identical results at 1, 2, and 8 threads, and
// the blocked floating-point reductions in linalg must be independent of
// the thread count (see DESIGN.md "Concurrency").

#include <gtest/gtest.h>

#include <cmath>

#include "core/fdx.h"
#include "core/transform.h"
#include "eval/runner.h"
#include "linalg/stats.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace fdx {
namespace {

SyntheticDataset MakeData(size_t tuples, size_t attributes, uint64_t seed) {
  SyntheticConfig config;
  config.num_tuples = tuples;
  config.num_attributes = attributes;
  config.seed = seed;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  return *std::move(ds);
}

/// Exact (bitwise) matrix equality, with a readable failure message.
void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.Subtract(b).MaxAbs(), 0.0);
}

TEST(ParallelDeterminismTest, PairTransformIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds = MakeData(500, 9, 11);
  TransformOptions options;
  options.seed = 5;
  options.threads = 1;
  auto serial = PairTransform(ds.noisy, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.threads = threads;
    auto parallel = PairTransform(ds.noisy, options);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*serial, *parallel);
  }
}

TEST(ParallelDeterminismTest, SampledPairTransformIdenticalAcrossThreads) {
  const SyntheticDataset ds = MakeData(800, 6, 12);
  TransformOptions options;
  options.seed = 9;
  options.max_pairs_per_attribute = 64;
  options.threads = 1;
  auto serial = PairTransform(ds.noisy, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.threads = threads;
    auto parallel = PairTransform(ds.noisy, options);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*serial, *parallel);
  }
}

TEST(ParallelDeterminismTest, MomentsIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds = MakeData(600, 10, 13);
  for (bool pooled : {false, true}) {
    TransformOptions options;
    options.seed = 3;
    options.pooled_covariance = pooled;
    options.threads = 1;
    auto serial = PairTransformMoments(ds.noisy, options);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      options.threads = threads;
      auto parallel = PairTransformMoments(ds.noisy, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->num_samples, serial->num_samples);
      for (size_t c = 0; c < serial->mean.size(); ++c) {
        EXPECT_EQ(parallel->mean[c], serial->mean[c]);
      }
      ExpectBitIdentical(serial->cov, parallel->cov);
    }
  }
}

TEST(ParallelDeterminismTest, PackedTransformIdenticalAcrossThreadCounts) {
  // The packed engine's two parallel phases (per-attribute counting
  // sorts, per-column bit packing) and the integer popcount moments must
  // all be independent of the thread count — word-for-word.
  const SyntheticDataset ds = MakeData(700, 11, 16);
  TransformOptions options;
  options.seed = 8;
  options.threads = 1;
  auto serial_bits = PairTransformPacked(ds.noisy, options);
  auto serial_counts = PairTransformCounts(ds.noisy, options);
  ASSERT_TRUE(serial_bits.ok() && serial_counts.ok());
  auto serial_cov = Covariance(*serial_bits, 1);
  ASSERT_TRUE(serial_cov.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.threads = threads;
    auto bits = PairTransformPacked(ds.noisy, options);
    ASSERT_TRUE(bits.ok());
    EXPECT_TRUE(bits->IdenticalTo(*serial_bits)) << threads << " threads";
    auto counts = PairTransformCounts(ds.noisy, options);
    ASSERT_TRUE(counts.ok());
    EXPECT_EQ(counts->counts, serial_counts->counts);
    EXPECT_EQ(counts->co_counts, serial_counts->co_counts);
    EXPECT_EQ(counts->num_samples, serial_counts->num_samples);
    // The packed covariance is all-integer inside: bit-identical even
    // between the serial and sharded accumulations.
    auto cov = Covariance(*bits, threads);
    ASSERT_TRUE(cov.ok());
    ExpectBitIdentical(*serial_cov, *cov);
  }
}

TEST(ParallelDeterminismTest, SampledPackedTransformIdenticalAcrossThreads) {
  const SyntheticDataset ds = MakeData(900, 7, 17);
  TransformOptions options;
  options.seed = 4;
  options.max_pairs_per_attribute = 100;
  options.threads = 1;
  auto serial = PairTransformPacked(ds.noisy, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.threads = threads;
    auto bits = PairTransformPacked(ds.noisy, options);
    ASSERT_TRUE(bits.ok());
    EXPECT_TRUE(bits->IdenticalTo(*serial)) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, MomentsRepeatableAtFixedThreadCount) {
  const SyntheticDataset ds = MakeData(600, 10, 14);
  TransformOptions options;
  options.seed = 21;
  options.threads = 8;
  auto a = PairTransformMoments(ds.noisy, options);
  auto b = PairTransformMoments(ds.noisy, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(a->cov, b->cov);
}

TEST(ParallelDeterminismTest, FdxDiscoverIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds = MakeData(800, 12, 15);
  FdxOptions options;
  options.threads = 1;
  auto serial = FdxDiscoverer(options).Discover(ds.noisy);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.threads = threads;
    auto parallel = FdxDiscoverer(options).Discover(ds.noisy);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->fds, serial->fds);
    ExpectBitIdentical(serial->theta, parallel->theta);
    ExpectBitIdentical(serial->autoregression, parallel->autoregression);
  }
}

TEST(ParallelDeterminismTest, BlockedStatsIndependentOfThreadCount) {
  Rng rng(17);
  const size_t n = 10000;  // > one accumulation block
  const size_t k = 12;
  Matrix samples(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) samples(i, j) = rng.NextGaussian();
  }
  const Vector mu2 = ColumnMeans(samples, 2);
  const Vector mu8 = ColumnMeans(samples, 8);
  ASSERT_EQ(mu2.size(), mu8.size());
  for (size_t j = 0; j < k; ++j) EXPECT_EQ(mu2[j], mu8[j]);

  auto cov2 = CovarianceWithMean(samples, mu2, 2);
  auto cov8 = CovarianceWithMean(samples, mu2, 8);
  ASSERT_TRUE(cov2.ok() && cov8.ok());
  ExpectBitIdentical(*cov2, *cov8);

  // The blocked reduction agrees with the serial one to rounding error.
  auto serial = CovarianceWithMean(samples, mu2, 1);
  ASSERT_TRUE(serial.ok());
  EXPECT_LT(serial->Subtract(*cov8).MaxAbs(), 1e-10);

  Matrix std2 = samples;
  Matrix std8 = samples;
  const Vector sd2 = StandardizeColumns(&std2, 2);
  const Vector sd8 = StandardizeColumns(&std8, 8);
  for (size_t j = 0; j < k; ++j) EXPECT_EQ(sd2[j], sd8[j]);
  ExpectBitIdentical(std2, std8);
}

TEST(ParallelDeterminismTest, ParallelMultiplyMatchesSerialReference) {
  // 70 x 90 x 80 = 504k fused multiply-adds: above the parallel cutoff.
  Rng rng(19);
  Matrix a(70, 90);
  Matrix b(90, 80);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = rng.NextBernoulli(0.2) ? 0.0 : rng.NextGaussian();
    }
  }
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.NextGaussian();
  }
  const Matrix fast = a.Multiply(b);
  // Reference: the original serial i-k-j loop with the zero skip.
  Matrix reference(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double v = a(i, k);
      if (v == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        reference(i, j) += v * b(k, j);
      }
    }
  }
  ExpectBitIdentical(reference, fast);

  const Matrix t = a.Transpose();
  ASSERT_EQ(t.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(ParallelDeterminismTest, RunMethodsParallelMatchesSerialRuns) {
  const SyntheticDataset small = MakeData(200, 6, 1);
  const SyntheticDataset other = MakeData(150, 5, 2);
  RunnerConfig config;
  config.time_budget_seconds = 30;
  config.rfi_max_lhs = 2;
  std::vector<MethodTask> tasks = {
      {MethodId::kFdx, &small.noisy},  {MethodId::kTane, &small.noisy},
      {MethodId::kCords, &small.noisy}, {MethodId::kFdx, &other.noisy},
      {MethodId::kGl, &other.noisy},
  };
  config.threads = 4;
  const auto fanned = RunMethodsParallel(tasks, config);
  ASSERT_EQ(fanned.size(), tasks.size());
  RunnerConfig serial_config = config;
  serial_config.threads = 1;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const RunOutcome serial =
        RunMethod(tasks[i].method, *tasks[i].table, serial_config);
    EXPECT_EQ(fanned[i].ok, serial.ok) << "task " << i;
    EXPECT_EQ(fanned[i].fds, serial.fds) << "task " << i;
  }
}

}  // namespace
}  // namespace fdx
