#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/rfi.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace fdx {
namespace {

bool HasFdWithRhs(const FdSet& fds, size_t rhs,
                  const std::vector<size_t>& expected_lhs) {
  for (const auto& fd : fds) {
    if (fd.rhs == rhs && fd.lhs == expected_lhs) return true;
  }
  return false;
}

TEST(RfiTest, FindsStrongDeterminant) {
  Table t{Schema({"x", "y", "noise"})};
  Rng rng(1);
  for (int i = 0; i < 600; ++i) {
    const int64_t x = rng.NextInt(0, 7);
    t.AppendRow({Value(x), Value((3 * x + 1) % 8), Value(rng.NextInt(0, 7))});
  }
  RfiOptions options;
  options.max_lhs_size = 2;
  auto fds = DiscoverRfi(t, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(HasFdWithRhs(*fds, 1, {0}))
      << FdSetToString(*fds, t.schema());
}

TEST(RfiTest, AtMostOneFdPerAttribute) {
  SyntheticConfig config;
  config.num_tuples = 400;
  config.num_attributes = 8;
  config.seed = 2;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  RfiOptions options;
  options.max_lhs_size = 3;
  auto fds = DiscoverRfi(ds->noisy, options);
  ASSERT_TRUE(fds.ok());
  std::set<size_t> rhs_seen;
  for (const auto& fd : *fds) {
    EXPECT_TRUE(rhs_seen.insert(fd.rhs).second);
  }
  EXPECT_LE(fds->size(), 8u);
}

TEST(RfiTest, RejectsSpuriousHighCardinalityDeterminants) {
  // A near-key column syntactically determines y but carries no
  // reliable information; the permutation correction must reject it
  // while accepting the true determinant.
  Table t{Schema({"key_like", "x", "y"})};
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const int64_t x = rng.NextInt(0, 2);
    t.AppendRow({Value(int64_t{i}), Value(x), Value(x)});
  }
  RfiOptions options;
  options.max_lhs_size = 1;
  options.min_score = 0.3;
  auto fds = DiscoverRfi(t, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(HasFdWithRhs(*fds, 2, {1}))
      << FdSetToString(*fds, t.schema());
  EXPECT_FALSE(HasFdWithRhs(*fds, 2, {0}));
}

TEST(RfiTest, MinScoreFiltersIndependentData) {
  Table t{Schema({"a", "b"})};
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    t.AppendRow({Value(rng.NextInt(0, 4)), Value(rng.NextInt(0, 4))});
  }
  RfiOptions options;
  options.min_score = 0.2;
  options.max_lhs_size = 1;
  auto fds = DiscoverRfi(t, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(fds->empty()) << FdSetToString(*fds, t.schema());
}

TEST(RfiTest, AlphaPruningKeepsQuality) {
  // Paper §5.2: quality barely changes across alpha settings.
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_attributes = 8;
  config.seed = 5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  double f1_exact = 0.0, f1_pruned = 0.0;
  for (double alpha : {1.0, 0.3}) {
    RfiOptions options;
    options.alpha = alpha;
    options.max_lhs_size = 3;
    auto fds = DiscoverRfi(ds->noisy, options);
    ASSERT_TRUE(fds.ok());
    const double f1 = ScoreFds(*fds, ds->true_fds).f1;
    if (alpha == 1.0) {
      f1_exact = f1;
    } else {
      f1_pruned = f1;
    }
  }
  EXPECT_NEAR(f1_pruned, f1_exact, 0.35);
}

TEST(RfiTest, TimeoutReturnsPartialWhenAsked) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 16;
  config.seed = 6;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  RfiOptions options;
  options.time_budget_seconds = 1e-6;
  auto failed = DiscoverRfi(ds->clean, options);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kTimeout);
  options.return_partial_on_timeout = true;
  auto partial = DiscoverRfi(ds->clean, options);
  EXPECT_TRUE(partial.ok());
}

TEST(RfiTest, RejectsEmptyTable) {
  EXPECT_FALSE(DiscoverRfi(Table(), {}).ok());
}

}  // namespace
}  // namespace fdx
