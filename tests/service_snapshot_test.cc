// Durability tests: the session snapshot codec (exact round-trips,
// loud verification failures), SessionRegistry::Restore semantics, and
// the end-to-end crash/restart contract — a restarted server must serve
// byte-identical discover results from a replayed --state-dir, with or
// without the spilled result cache.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fdx.h"
#include "data/table.h"
#include "util/json_parser.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_registry.h"
#include "service/snapshot.h"
#include "util/file_io.h"
#include "util/fingerprint.h"
#include "util/socket.h"

namespace fdx {
namespace {

Schema TestSchema() { return Schema({"a", "b", "c"}); }

/// Mixed-type batch: ints, a double that is integral (1e6), a double
/// needing all 17 digits, a string, and a null — every case the typed
/// cell codec exists for.
Table MixedBatch() {
  Table table(TestSchema());
  table.AppendRow({Value(int64_t{1}), Value(0.1 + 0.2), Value(std::string("x"))});
  table.AppendRow({Value(int64_t{2}), Value(1e6), Value::Null()});
  table.AppendRow({Value(int64_t{3}), Value(-2.5), Value(std::string("y,\"z\""))});
  return table;
}

Table IntBatch(int offset) {
  Table table(TestSchema());
  for (int i = 0; i < 4; ++i) {
    table.AppendRow({Value(int64_t{i + offset}), Value(int64_t{2 * (i + offset)}),
                     Value(int64_t{i % 3})});
  }
  return table;
}

FdxOptions NonDefaultOptions() {
  FdxOptions options;
  options.lambda = 0.123456789012345678;  // needs %.17g to survive
  options.time_budget_seconds = 7.5;
  return options;
}

std::string SessionContentHex(const std::vector<Table>& batches) {
  Fingerprint fp;
  fp.UpdateString("session");
  for (const Table& batch : batches) {
    fp.UpdateString("batch");
    UpdateTableFingerprint(&fp, batch);
  }
  return fp.Hex();
}

std::string EncodeSession(const std::string& id, const FdxOptions& options,
                          const std::vector<Table>& batches) {
  std::vector<std::string> batches_json;
  for (const Table& batch : batches) {
    batches_json.push_back(EncodeBatchRows(batch));
  }
  return EncodeSessionSnapshot(id, TestSchema(), options,
                               CanonicalOptionsKey(options),
                               SessionContentHex(batches), batches_json);
}

TEST(SnapshotCodecTest, SessionRoundTripPreservesEverything) {
  const std::vector<Table> batches = {MixedBatch(), IntBatch(10)};
  const FdxOptions options = NonDefaultOptions();
  const std::string text = EncodeSession("s-3", options, batches);

  auto decoded = DecodeSessionSnapshot(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, "s-3");
  EXPECT_EQ(decoded->schema.names(), TestSchema().names());
  EXPECT_EQ(decoded->options_key, CanonicalOptionsKey(options));
  EXPECT_EQ(decoded->content_hex, SessionContentHex(batches));
  EXPECT_DOUBLE_EQ(decoded->options.lambda, options.lambda);
  EXPECT_DOUBLE_EQ(decoded->options.time_budget_seconds,
                   options.time_budget_seconds);
  ASSERT_EQ(decoded->batches.size(), 2u);
  // Cell-exact replay, including the null and the non-representable
  // double. The fingerprint equality below is the strong form: the
  // decoded batches hash to the same content id as the originals, so a
  // restarted server reconstructs the *identical* session fingerprint.
  EXPECT_EQ(SessionContentHex(decoded->batches), SessionContentHex(batches));
  EXPECT_TRUE(decoded->batches[0].cell(1, 2).is_null());
  EXPECT_EQ(decoded->batches[0].cell(0, 1).AsDouble(), 0.1 + 0.2);
  // 1e6 must come back as a *double*, not get re-typed to int (that
  // would change the fingerprint).
  EXPECT_EQ(decoded->batches[0].cell(1, 1).type(), ValueType::kDouble);
}

TEST(SnapshotCodecTest, TamperedOptionsFailVerification) {
  const std::string text = EncodeSession("s-1", NonDefaultOptions(),
                                         {IntBatch(0)});
  // Flip the persisted lambda; the stored options_key no longer matches.
  std::string tampered = text;
  const size_t at = tampered.find("0.12345678901234568");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 1, "9");
  auto decoded = DecodeSessionSnapshot(tampered);
  EXPECT_FALSE(decoded.ok());
}

TEST(SnapshotCodecTest, TamperedBatchFailsVerification) {
  const std::string text = EncodeSession("s-1", FdxOptions{}, {IntBatch(0)});
  std::string tampered = text;
  const size_t at = tampered.find("[\"i\",\"2\"]");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 9, "[\"i\",\"7\"]");
  auto decoded = DecodeSessionSnapshot(tampered);
  EXPECT_FALSE(decoded.ok());
}

TEST(SnapshotCodecTest, TruncatedSnapshotFailsLoudly) {
  const std::string text = EncodeSession("s-1", FdxOptions{}, {IntBatch(0)});
  for (const size_t keep : {text.size() / 4, text.size() / 2, text.size() - 2}) {
    auto decoded = DecodeSessionSnapshot(text.substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "accepted a " << keep << "-byte prefix";
  }
}

TEST(SnapshotCodecTest, CacheRoundTripKeepsOrderAndBytes) {
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"tbl|abc|k", "{\"ok\":true,\"fds\":[]}"},
      {"sess|def|k|w", "payload with \"quotes\" and \n newline"},
      {"", ""},
  };
  auto decoded = DecodeCacheSnapshot(EncodeCacheSnapshot(entries));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, entries);

  auto empty = DecodeCacheSnapshot(EncodeCacheSnapshot({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(DecodeCacheSnapshot("{\"version\":1,\"entries\":").ok());
}

TEST(SessionRegistryRestoreTest, RestoreReservesIdRange) {
  SessionRegistry registry(8, /*ttl_seconds=*/0.0);
  auto restored = registry.Restore("s-5", TestSchema(), FdxOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->id, "s-5");
  // Fresh opens must never collide with a restored id.
  auto opened = registry.Open(TestSchema(), FdxOptions{});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->id, "s-6");
  // Duplicate restore is an error, not a silent replacement.
  EXPECT_FALSE(registry.Restore("s-5", TestSchema(), FdxOptions{}).ok());
}

TEST(SessionRegistryRestoreTest, RejectsMalformedIdsAndHonorsCap) {
  SessionRegistry registry(1, 0.0);
  EXPECT_FALSE(registry.Restore("", TestSchema(), FdxOptions{}).ok());
  EXPECT_FALSE(registry.Restore("x-1", TestSchema(), FdxOptions{}).ok());
  EXPECT_FALSE(registry.Restore("s-", TestSchema(), FdxOptions{}).ok());
  EXPECT_FALSE(registry.Restore("s-0", TestSchema(), FdxOptions{}).ok());
  EXPECT_FALSE(registry.Restore("s-1x", TestSchema(), FdxOptions{}).ok());
  ASSERT_TRUE(registry.Restore("s-1", TestSchema(), FdxOptions{}).ok());
  // The cap counts restored sessions too.
  auto over = registry.Restore("s-2", TestSchema(), FdxOptions{});
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kUnavailable);
}

/// One-shot request helper (connect, one line out, one line in).
Result<std::string> Request(uint16_t port, const std::string& line) {
  FDX_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectLoopback(port));
  FDX_RETURN_IF_ERROR(sock.SendAll(line + "\n"));
  std::string response;
  FDX_RETURN_IF_ERROR(sock.ReadLine(&response));
  return response;
}

std::string RowsJson(int rows, int modulus, int offset = 0) {
  std::string json = "[";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) json += ",";
    const int a = (i + offset) % modulus;
    json += "[" + std::to_string(a) + "," + std::to_string(2 * a) + "," +
            std::to_string(i % 3) + "]";
  }
  return json + "]";
}

class ServerRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    state_dir_ = ::testing::TempDir() + "fdx_state_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name();
    // Start from an empty state dir even if a previous run left files.
    auto files = ListDirectory(state_dir_ + "/sessions");
    if (files.ok()) {
      for (const auto& name : files.value()) {
        (void)RemoveFile(state_dir_ + "/sessions/" + name);
      }
    }
    (void)RemoveFile(state_dir_ + "/cache.json");
  }

  ServerOptions DurableOptions() {
    ServerOptions options;
    options.state_dir = state_dir_;
    options.snapshot_interval_seconds = 60.0;  // spills only at teardown
    return options;
  }

  std::string state_dir_;
};

TEST_F(ServerRestartTest, RestartServesBitIdenticalDiscover) {
  std::string cold_response;
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    auto open =
        Request(server.port(), R"({"op":"open","schema":["a","b","c"]})");
    ASSERT_TRUE(open.ok() && JsonValue::Parse(*open)->BoolOr("ok", false))
        << (open.ok() ? *open : open.status().ToString());
    ASSERT_TRUE(Request(server.port(),
                        R"({"op":"append","session":"s-1","rows":)" +
                            RowsJson(24, 5) + "}")
                    .ok());
    ASSERT_TRUE(Request(server.port(),
                        R"({"op":"append","session":"s-1","rows":)" +
                            RowsJson(12, 5, 2) + "}")
                    .ok());
    auto cold =
        Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(JsonValue::Parse(*cold)->BoolOr("ok", false)) << *cold;
    cold_response = *cold;
    EXPECT_GE(server.snapshot_writes(), 3u);  // open + two appends
    server.Shutdown();
  }

  // Restart A: warm — the spilled result cache answers directly.
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.sessions_recovered(), 1u);
    EXPECT_EQ(server.sessions_recovery_failed(), 0u);
    EXPECT_GE(server.cache_entries_restored(), 1u);
    auto warm =
        Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(*warm, cold_response);
    // The restored session accepts new appends (the moments replayed).
    auto append = Request(server.port(),
                          R"({"op":"append","session":"s-1","rows":)" +
                              RowsJson(8, 5) + "}");
    ASSERT_TRUE(append.ok());
    EXPECT_TRUE(JsonValue::Parse(*append)->BoolOr("ok", false)) << *append;
    EXPECT_DOUBLE_EQ(JsonValue::Parse(*append)->NumberOr("total_rows", 0), 44);
    server.Shutdown();
  }
}

// Headerless CSV appends parse with synthetic positional column names;
// the server must rebind them to the session schema before
// fingerprinting, or the durability replay (which rebuilds batches
// under the session schema) can never reproduce the stored content
// hash. Regression: recovery used to fail for every CSV-fed session.
TEST_F(ServerRestartTest, CsvAppendSurvivesRestart) {
  std::string cold_response;
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(
        Request(server.port(), R"({"op":"open","schema":["a","b","c"]})")
            .ok());
    auto append = Request(
        server.port(),
        R"({"op":"append","session":"s-1","csv":"0,0,0\n1,2,1\n2,4,2\n1.5,x,\n"})");
    ASSERT_TRUE(append.ok());
    ASSERT_TRUE(JsonValue::Parse(*append)->BoolOr("ok", false)) << *append;
    auto cold = Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(JsonValue::Parse(*cold)->BoolOr("ok", false)) << *cold;
    cold_response = *cold;
    server.Shutdown();
  }
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.sessions_recovered(), 1u);
    EXPECT_EQ(server.sessions_recovery_failed(), 0u);
    auto warm = Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(*warm, cold_response);
    server.Shutdown();
  }
}

TEST_F(ServerRestartTest, ColdRecomputeAfterRestartMatchesOriginal) {
  std::string cold_response;
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(
        Request(server.port(), R"({"op":"open","schema":["a","b","c"]})")
            .ok());
    ASSERT_TRUE(Request(server.port(),
                        R"({"op":"append","session":"s-1","rows":)" +
                            RowsJson(24, 5) + "}")
                    .ok());
    auto cold =
        Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(JsonValue::Parse(*cold)->BoolOr("ok", false)) << *cold;
    cold_response = *cold;
    server.Shutdown();
  }
  // No cache spill available: force a genuine re-solve after replay.
  ASSERT_TRUE(RemoveFile(state_dir_ + "/cache.json").ok());
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_EQ(server.sessions_recovered(), 1u);
    EXPECT_EQ(server.cache_entries_restored(), 0u);
    auto redo =
        Request(server.port(), R"({"op":"discover","session":"s-1"})");
    ASSERT_TRUE(redo.ok());
    EXPECT_EQ(*redo, cold_response)
        << "replayed session solved to different bytes";
    server.Shutdown();
  }
}

TEST_F(ServerRestartTest, CorruptSnapshotIsDroppedNotFatal) {
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(
        Request(server.port(), R"({"op":"open","schema":["a","b","c"]})")
            .ok());
    server.Shutdown();
  }
  // Corrupt the snapshot on disk; the restart must drop it (and the
  // file), count the failure, and keep serving.
  const std::string path = state_dir_ + "/sessions/s-1.json";
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path, text.value().substr(0, text.value().size() / 2))
          .ok());
  {
    FdxServer server(DurableOptions());
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.sessions_recovered(), 0u);
    EXPECT_EQ(server.sessions_recovery_failed(), 1u);
    EXPECT_FALSE(ReadFileToString(path).ok());  // deleted
    // The id space is clean again: a fresh open starts from s-1.
    auto open =
        Request(server.port(), R"({"op":"open","schema":["a","b","c"]})");
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(JsonValue::Parse(*open)->BoolOr("ok", false));
    server.Shutdown();
  }
}

TEST_F(ServerRestartTest, EvictionDeletesSnapshotFile) {
  ServerOptions options = DurableOptions();
  options.session_ttl_seconds = 0.05;
  FdxServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      Request(server.port(), R"({"op":"open","schema":["a","b","c"]})").ok());
  const std::string path = state_dir_ + "/sessions/s-1.json";
  ASSERT_TRUE(ReadFileToString(path).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Eviction runs on the next lookup that touches the session's shard —
  // the discover below finds it expired, evicts it, and fires the
  // server's eviction listener, which removes the snapshot file.
  auto gone = Request(server.port(), R"({"op":"discover","session":"s-1"})");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(JsonValue::Parse(*gone)->BoolOr("ok", true)) << *gone;
  EXPECT_FALSE(ReadFileToString(path).ok())
      << "evicted session left its snapshot behind";
  server.Shutdown();
}

TEST_F(ServerRestartTest, StatusReportsDurabilityAndShedBlocks) {
  FdxServer server(DurableOptions());
  ASSERT_TRUE(server.Start().ok());
  auto status = Request(server.port(), R"({"op":"status"})");
  ASSERT_TRUE(status.ok());
  auto parsed = JsonValue::Parse(*status);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* durability = parsed->Find("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_TRUE(durability->BoolOr("enabled", false));
  const JsonValue* shed = parsed->Find("shed");
  ASSERT_NE(shed, nullptr);
  EXPECT_DOUBLE_EQ(shed->NumberOr("queue", -1), 0);
  // The text report renders the new blocks too.
  const std::string text = RenderStatusTextReport(*parsed);
  EXPECT_NE(text.find("shed:"), std::string::npos);
  EXPECT_NE(text.find("durability:"), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace fdx
