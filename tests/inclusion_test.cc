#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/inclusion.h"
#include "data/csv.h"

namespace fdx {
namespace {

Table TableFromCsv(const std::string& text) {
  auto t = ParseCsv(text);
  EXPECT_TRUE(t.ok());
  return *t;
}

bool HasInd(const std::vector<InclusionDependency>& inds, size_t lhs,
            size_t rhs) {
  for (const auto& ind : inds) {
    if (ind.lhs == lhs && ind.rhs == rhs) return true;
  }
  return false;
}

TEST(InclusionTest, DetectsSubsetColumn) {
  // a's values {1,2} are contained in b's {1,2,3}; not vice versa.
  Table t = TableFromCsv("a,b\n1,1\n2,2\n1,3\n2,1\n");
  auto inds = DiscoverInclusionDependencies(t);
  ASSERT_TRUE(inds.ok());
  EXPECT_TRUE(HasInd(*inds, 0, 1));
  EXPECT_FALSE(HasInd(*inds, 1, 0));
}

TEST(InclusionTest, EqualDomainsContainEachOther) {
  Table t = TableFromCsv("a,b\n1,2\n2,1\n");
  auto inds = DiscoverInclusionDependencies(t);
  ASSERT_TRUE(inds.ok());
  EXPECT_TRUE(HasInd(*inds, 0, 1));
  EXPECT_TRUE(HasInd(*inds, 1, 0));
}

TEST(InclusionTest, StringsNeverMatchNumbers) {
  Table t = TableFromCsv("num,str\n1,x1\n2,x2\n");
  auto inds = DiscoverInclusionDependencies(t);
  ASSERT_TRUE(inds.ok());
  EXPECT_TRUE(inds->empty());
}

TEST(InclusionTest, NullsIgnored) {
  Table t = TableFromCsv("a,b\n1,1\n,2\n2,\n");
  auto inds = DiscoverInclusionDependencies(t);
  ASSERT_TRUE(inds.ok());
  EXPECT_TRUE(HasInd(*inds, 0, 1));  // {1,2} within {1,2}
}

TEST(InclusionTest, ApproximateCoverage) {
  // 3 of a's 4 values appear in b -> coverage .75.
  Table t = TableFromCsv("a,b\n1,1\n2,2\n3,3\n9,4\n");
  IndOptions exact;
  auto strict = DiscoverInclusionDependencies(t, exact);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(HasInd(*strict, 0, 1));
  IndOptions lax;
  lax.min_coverage = 0.7;
  auto approx = DiscoverInclusionDependencies(t, lax);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(HasInd(*approx, 0, 1));
  for (const auto& ind : *approx) {
    if (ind.lhs == 0 && ind.rhs == 1) {
      EXPECT_NEAR(ind.coverage, 0.75, 1e-12);
    }
  }
}

TEST(InclusionTest, ConstantLhsSkipped) {
  Table t = TableFromCsv("k,b\n5,5\n5,6\n5,7\n");
  auto inds = DiscoverInclusionDependencies(t);
  ASSERT_TRUE(inds.ok());
  EXPECT_FALSE(HasInd(*inds, 0, 1));  // cardinality-1 LHS filtered
}

TEST(InclusionTest, SortedByCoverage) {
  Table t = TableFromCsv("a,b,c\n1,1,1\n2,2,9\n3,3,8\n");
  IndOptions lax;
  lax.min_coverage = 0.3;
  auto inds = DiscoverInclusionDependencies(t, lax);
  ASSERT_TRUE(inds.ok());
  for (size_t i = 1; i < inds->size(); ++i) {
    EXPECT_GE((*inds)[i - 1].coverage, (*inds)[i].coverage);
  }
}

TEST(InclusionTest, RejectsDegenerateInput) {
  EXPECT_FALSE(DiscoverInclusionDependencies(Table{Schema({"x"})}).ok());
  Table t = TableFromCsv("a,b\n1,1\n");
  IndOptions bad;
  bad.min_coverage = 0.0;
  EXPECT_FALSE(DiscoverInclusionDependencies(t, bad).ok());
}

TEST(InclusionTest, ToStringRenders) {
  InclusionDependency ind{0, 1, 0.5};
  Schema schema({"A", "B"});
  EXPECT_EQ(ind.ToString(schema), "A [= B (coverage 0.500)");
}

}  // namespace
}  // namespace fdx
