#include <gtest/gtest.h>

#include "core/incremental.h"
#include "synth/generator.h"

namespace fdx {
namespace {

TEST(IncrementalFdxTest, RejectsBadBatches) {
  IncrementalFdx incremental{Schema({"a", "b"})};
  Table wrong_width{Schema({"a"})};
  wrong_width.AppendRow({Value(int64_t{1})});
  wrong_width.AppendRow({Value(int64_t{2})});
  EXPECT_FALSE(incremental.Append(wrong_width).ok());
  Table one_row{Schema({"a", "b"})};
  one_row.AppendRow({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_FALSE(incremental.Append(one_row).ok());
  EXPECT_FALSE(incremental.CurrentFds().ok());  // nothing appended
}

TEST(IncrementalFdxTest, SingleBatchMatchesBatchDiscovery) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_attributes = 8;
  config.seed = 41;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());
  auto incremental_result = incremental.CurrentFds();
  ASSERT_TRUE(incremental_result.ok());

  FdxDiscoverer discoverer;
  auto batch_result = discoverer.Discover(ds->clean);
  ASSERT_TRUE(batch_result.ok());

  // Same data, same seed path -> identical moments -> identical FDs.
  EXPECT_EQ(incremental_result->fds, batch_result->fds);
}

TEST(IncrementalFdxTest, ConvergesAcrossManyBatches) {
  SyntheticConfig config;
  config.num_tuples = 4000;
  config.num_attributes = 8;
  config.noise_rate = 0.02;
  config.seed = 42;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx incremental(ds->noisy.schema(), FdxOptions{});
  const size_t batch_size = 500;
  for (size_t start = 0; start < ds->noisy.num_rows();
       start += batch_size) {
    Table batch{ds->noisy.schema()};
    const size_t end =
        std::min(start + batch_size, ds->noisy.num_rows());
    for (size_t r = start; r < end; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < ds->noisy.num_columns(); ++c) {
        row.push_back(ds->noisy.cell(r, c));
      }
      batch.AppendRow(std::move(row));
    }
    ASSERT_TRUE(incremental.Append(batch).ok());
  }
  EXPECT_EQ(incremental.total_rows(), 4000u);
  auto result = incremental.CurrentFds();
  ASSERT_TRUE(result.ok());
  const FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.6)
      << FdSetToString(result->fds, ds->noisy.schema());
}

TEST(IncrementalFdxTest, EstimateImprovesWithData) {
  // With only a tiny prefix the estimate may be wrong; after the full
  // stream it must be at least as good.
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 10;
  config.seed = 43;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});

  ASSERT_TRUE(incremental.Append(ds->clean.Head(100)).ok());
  auto early = incremental.CurrentFds();
  ASSERT_TRUE(early.ok());
  const double early_f1 = ScoreFdsUndirected(early->fds, ds->true_fds).f1;

  Table rest{ds->clean.schema()};
  for (size_t r = 100; r < ds->clean.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < ds->clean.num_columns(); ++c) {
      row.push_back(ds->clean.cell(r, c));
    }
    rest.AppendRow(std::move(row));
  }
  ASSERT_TRUE(incremental.Append(rest).ok());
  auto late = incremental.CurrentFds();
  ASSERT_TRUE(late.ok());
  const double late_f1 = ScoreFdsUndirected(late->fds, ds->true_fds).f1;
  EXPECT_GE(late_f1 + 1e-9, early_f1);
  EXPECT_GT(late_f1, 0.6);
}

TEST(IncrementalFdxTest, CovarianceMatchesBatchMoments) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 6;
  config.seed = 44;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());
  auto incremental_cov = incremental.CurrentCovariance();
  ASSERT_TRUE(incremental_cov.ok());
  auto moments = PairTransformMoments(ds->clean, FdxOptions{}.transform);
  ASSERT_TRUE(moments.ok());
  EXPECT_LT(incremental_cov->Subtract(moments->cov).MaxAbs(), 1e-12);
}

}  // namespace
}  // namespace fdx
