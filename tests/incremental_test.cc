#include <gtest/gtest.h>

#include "core/incremental.h"
#include "synth/generator.h"
#include "util/fault_injection.h"

namespace fdx {
namespace {

TEST(IncrementalFdxTest, RejectsBadBatches) {
  IncrementalFdx incremental{Schema({"a", "b"})};
  Table wrong_width{Schema({"a"})};
  wrong_width.AppendRow({Value(int64_t{1})});
  wrong_width.AppendRow({Value(int64_t{2})});
  EXPECT_FALSE(incremental.Append(wrong_width).ok());
  Table one_row{Schema({"a", "b"})};
  one_row.AppendRow({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_FALSE(incremental.Append(one_row).ok());
  EXPECT_FALSE(incremental.CurrentFds().ok());  // nothing appended
}

TEST(IncrementalFdxTest, SingleBatchMatchesBatchDiscovery) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_attributes = 8;
  config.seed = 41;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());
  auto incremental_result = incremental.CurrentFds();
  ASSERT_TRUE(incremental_result.ok());

  FdxDiscoverer discoverer;
  auto batch_result = discoverer.Discover(ds->clean);
  ASSERT_TRUE(batch_result.ok());

  // Same data, same seed path -> identical moments -> identical FDs.
  EXPECT_EQ(incremental_result->fds, batch_result->fds);
}

TEST(IncrementalFdxTest, ConvergesAcrossManyBatches) {
  SyntheticConfig config;
  config.num_tuples = 4000;
  config.num_attributes = 8;
  config.noise_rate = 0.02;
  config.seed = 42;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx incremental(ds->noisy.schema(), FdxOptions{});
  const size_t batch_size = 500;
  for (size_t start = 0; start < ds->noisy.num_rows();
       start += batch_size) {
    Table batch{ds->noisy.schema()};
    const size_t end =
        std::min(start + batch_size, ds->noisy.num_rows());
    for (size_t r = start; r < end; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < ds->noisy.num_columns(); ++c) {
        row.push_back(ds->noisy.cell(r, c));
      }
      batch.AppendRow(std::move(row));
    }
    ASSERT_TRUE(incremental.Append(batch).ok());
  }
  EXPECT_EQ(incremental.total_rows(), 4000u);
  auto result = incremental.CurrentFds();
  ASSERT_TRUE(result.ok());
  const FdScore score = ScoreFdsUndirected(result->fds, ds->true_fds);
  EXPECT_GT(score.f1, 0.6)
      << FdSetToString(result->fds, ds->noisy.schema());
}

TEST(IncrementalFdxTest, EstimateImprovesWithData) {
  // With only a tiny prefix the estimate may be wrong; after the full
  // stream it must be at least as good.
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 10;
  config.seed = 43;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});

  ASSERT_TRUE(incremental.Append(ds->clean.Head(100)).ok());
  auto early = incremental.CurrentFds();
  ASSERT_TRUE(early.ok());
  const double early_f1 = ScoreFdsUndirected(early->fds, ds->true_fds).f1;

  Table rest{ds->clean.schema()};
  for (size_t r = 100; r < ds->clean.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < ds->clean.num_columns(); ++c) {
      row.push_back(ds->clean.cell(r, c));
    }
    rest.AppendRow(std::move(row));
  }
  ASSERT_TRUE(incremental.Append(rest).ok());
  auto late = incremental.CurrentFds();
  ASSERT_TRUE(late.ok());
  const double late_f1 = ScoreFdsUndirected(late->fds, ds->true_fds).f1;
  EXPECT_GE(late_f1 + 1e-9, early_f1);
  EXPECT_GT(late_f1, 0.6);
}

TEST(IncrementalFdxTest, AppendHonorsTimeBudget) {
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_attributes = 6;
  config.seed = 45;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  FdxOptions options;
  options.time_budget_seconds = 1e-9;  // expired before the first poll
  IncrementalFdx incremental(ds->clean.schema(), options);
  const Status appended = incremental.Append(ds->clean);
  EXPECT_EQ(appended.code(), StatusCode::kTimeout) << appended.ToString();
  // A timed-out append leaves the accumulator untouched.
  EXPECT_EQ(incremental.total_rows(), 0u);
  EXPECT_EQ(incremental.total_batches(), 0u);
}

TEST(IncrementalFdxTest, ExpiredDeadlineStopsCovarianceSolve) {
  // The deadline CurrentFds builds is handed through to the covariance
  // solve via the caller-owned-deadline overload; an already-expired
  // one must stop the run with Timeout instead of computing anyway.
  SyntheticConfig config;
  config.num_tuples = 600;
  config.num_attributes = 6;
  config.seed = 46;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());
  auto cov = incremental.CurrentCovariance();
  ASSERT_TRUE(cov.ok());

  FdxDiscoverer discoverer;
  const Deadline expired(1e-9);
  auto result = discoverer.DiscoverFromCovariance(*cov, &expired);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);

  // Null deadline means unlimited — same covariance solves fine.
  auto unlimited = discoverer.DiscoverFromCovariance(*cov, nullptr);
  EXPECT_TRUE(unlimited.ok()) << unlimited.status().ToString();
}

TEST(IncrementalFdxTest, RecoveryLadderRunsThroughCurrentFds) {
  // Arm the glasso fault on every attempt: the ridge escalation fails
  // too, and CurrentFds must walk down to the sequential-lasso fallback
  // and surface that in the diagnostics — same ladder as the batch path.
  SyntheticConfig config;
  config.num_tuples = 1200;
  config.num_attributes = 6;
  config.seed = 47;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());

  ASSERT_TRUE(ArmFaults("glasso.sweep").ok());
  auto result = incremental.CurrentFds();
  DisarmFaults();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->diagnostics.fallback_sequential);
  EXPECT_TRUE(result->diagnostics.Degraded());
  EXPECT_FALSE(result->diagnostics.events.empty());
}

TEST(IncrementalFdxTest, MultiBatchMatchesSingleBatchOnPlantedFds) {
  // Clean planted-FD data, split into halves: the batch-local pairing
  // approximation must still land on the same FD set a single batch
  // over the full table finds.
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 10;
  config.seed = 43;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx single(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(single.Append(ds->clean).ok());
  auto single_result = single.CurrentFds();
  ASSERT_TRUE(single_result.ok());

  IncrementalFdx split(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(split.Append(ds->clean.Head(1500)).ok());
  Table rest{ds->clean.schema()};
  for (size_t r = 1500; r < ds->clean.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < ds->clean.num_columns(); ++c) {
      row.push_back(ds->clean.cell(r, c));
    }
    rest.AppendRow(std::move(row));
  }
  ASSERT_TRUE(split.Append(rest).ok());
  EXPECT_EQ(split.total_batches(), 2u);
  auto split_result = split.CurrentFds();
  ASSERT_TRUE(split_result.ok());

  const double single_f1 =
      ScoreFdsUndirected(single_result->fds, ds->true_fds).f1;
  const double split_f1 =
      ScoreFdsUndirected(split_result->fds, ds->true_fds).f1;
  EXPECT_GT(single_f1, 0.6);
  EXPECT_GT(split_f1, 0.6);
  // And the two estimates agree with each other, not just with truth.
  const double mutual_f1 =
      ScoreFdsUndirected(split_result->fds, single_result->fds).f1;
  EXPECT_GT(mutual_f1, 0.6);
}

TEST(IncrementalFdxTest, MemoAnswersRepeatedCurrentFds) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 6;
  config.seed = 48;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());

  auto first = incremental.CurrentFds();
  ASSERT_TRUE(first.ok());
  auto second = incremental.CurrentFds();
  ASSERT_TRUE(second.ok());
  // No batch arrived between the calls: the second is a memo hit, not a
  // new solve, and returns the identical estimate.
  EXPECT_EQ(incremental.solves(), 1u);
  EXPECT_EQ(incremental.memo_hits(), 1u);
  EXPECT_EQ(first->fds, second->fds);
  EXPECT_DOUBLE_EQ(first->theta.Subtract(second->theta).MaxAbs(), 0.0);
}

TEST(IncrementalFdxTest, WarmStartChainsAcrossAppends) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 8;
  config.seed = 49;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean.Head(1000)).ok());
  const std::string key_before = incremental.SolveStateKey();

  auto cold = incremental.CurrentFds();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->diagnostics.solver_warm_start);
  const std::string key_after_cold = incremental.SolveStateKey();
  EXPECT_NE(key_before, key_after_cold);

  Table rest{ds->clean.schema()};
  for (size_t r = 1000; r < ds->clean.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < ds->clean.num_columns(); ++c) {
      row.push_back(ds->clean.cell(r, c));
    }
    rest.AppendRow(std::move(row));
  }
  ASSERT_TRUE(incremental.Append(rest).ok());

  auto warm = incremental.CurrentFds();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->diagnostics.solver_warm_start);
  EXPECT_EQ(incremental.solves(), 2u);
  EXPECT_EQ(incremental.warm_solves(), 1u);
  // Each solve extends the lineage, so the key keeps changing.
  EXPECT_NE(incremental.SolveStateKey(), key_after_cold);
}

TEST(IncrementalFdxTest, ReuseDisabledForcesColdSolves) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_attributes = 8;
  config.seed = 49;  // same data as WarmStartChainsAcrossAppends
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());

  FdxOptions options;
  options.reuse_solver_state = false;
  IncrementalFdx incremental(ds->clean.schema(), options);
  ASSERT_TRUE(incremental.Append(ds->clean.Head(1000)).ok());
  ASSERT_TRUE(incremental.CurrentFds().ok());

  Table rest{ds->clean.schema()};
  for (size_t r = 1000; r < ds->clean.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < ds->clean.num_columns(); ++c) {
      row.push_back(ds->clean.cell(r, c));
    }
    rest.AppendRow(std::move(row));
  }
  ASSERT_TRUE(incremental.Append(rest).ok());
  auto second = incremental.CurrentFds();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->diagnostics.solver_warm_start);
  EXPECT_EQ(incremental.solves(), 2u);
  EXPECT_EQ(incremental.warm_solves(), 0u);
}

TEST(IncrementalFdxTest, CovarianceMatchesBatchMoments) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_attributes = 6;
  config.seed = 44;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  IncrementalFdx incremental(ds->clean.schema(), FdxOptions{});
  ASSERT_TRUE(incremental.Append(ds->clean).ok());
  auto incremental_cov = incremental.CurrentCovariance();
  ASSERT_TRUE(incremental_cov.ok());
  auto moments = PairTransformMoments(ds->clean, FdxOptions{}.transform);
  ASSERT_TRUE(moments.ok());
  EXPECT_LT(incremental_cov->Subtract(moments->cov).MaxAbs(), 1e-12);
}

}  // namespace
}  // namespace fdx
