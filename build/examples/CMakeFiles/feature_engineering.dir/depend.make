# Empty dependencies file for feature_engineering.
# This may be replaced when dependencies are built.
