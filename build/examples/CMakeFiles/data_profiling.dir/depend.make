# Empty dependencies file for data_profiling.
# This may be replaced when dependencies are built.
