# Empty compiler generated dependencies file for streaming_discovery.
# This may be replaced when dependencies are built.
