file(REMOVE_RECURSE
  "CMakeFiles/streaming_discovery.dir/streaming_discovery.cpp.o"
  "CMakeFiles/streaming_discovery.dir/streaming_discovery.cpp.o.d"
  "streaming_discovery"
  "streaming_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
