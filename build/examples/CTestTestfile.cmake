# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_profiling "/root/repo/build/examples/data_profiling")
set_tests_properties(example_data_profiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_feature_engineering "/root/repo/build/examples/feature_engineering")
set_tests_properties(example_feature_engineering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_noise_robustness "/root/repo/build/examples/noise_robustness")
set_tests_properties(example_noise_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_cleaning "/root/repo/build/examples/data_cleaning")
set_tests_properties(example_data_cleaning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_normalization "/root/repo/build/examples/schema_normalization")
set_tests_properties(example_schema_normalization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_discovery "/root/repo/build/examples/streaming_discovery")
set_tests_properties(example_streaming_discovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
