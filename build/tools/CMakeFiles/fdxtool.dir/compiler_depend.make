# Empty compiler generated dependencies file for fdxtool.
# This may be replaced when dependencies are built.
