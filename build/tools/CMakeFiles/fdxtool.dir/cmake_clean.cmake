file(REMOVE_RECURSE
  "CMakeFiles/fdxtool.dir/fdxtool.cc.o"
  "CMakeFiles/fdxtool.dir/fdxtool.cc.o.d"
  "fdxtool"
  "fdxtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdxtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
