# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fdxtool_generate "/root/repo/build/tools/fdxtool" "generate" "--out=/root/repo/build/fdxtool_demo.csv" "--tuples=300" "--attributes=6" "--noise=0.02")
set_tests_properties(fdxtool_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_discover "/root/repo/build/tools/fdxtool" "discover" "/root/repo/build/fdxtool_demo.csv")
set_tests_properties(fdxtool_discover PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_discover_json "/root/repo/build/tools/fdxtool" "discover" "/root/repo/build/fdxtool_demo.csv" "--format=json")
set_tests_properties(fdxtool_discover_json PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_profile "/root/repo/build/tools/fdxtool" "profile" "/root/repo/build/fdxtool_demo.csv")
set_tests_properties(fdxtool_profile PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_report "/root/repo/build/tools/fdxtool" "report" "/root/repo/build/fdxtool_demo.csv")
set_tests_properties(fdxtool_report PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_rank "/root/repo/build/tools/fdxtool" "rank" "/root/repo/build/fdxtool_demo.csv")
set_tests_properties(fdxtool_rank PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_keys "/root/repo/build/tools/fdxtool" "keys" "/root/repo/build/fdxtool_demo.csv")
set_tests_properties(fdxtool_keys PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_cfd "/root/repo/build/tools/fdxtool" "cfd" "/root/repo/build/fdxtool_demo.csv" "--support=0.02")
set_tests_properties(fdxtool_cfd PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_dc "/root/repo/build/tools/fdxtool" "dc" "/root/repo/build/fdxtool_demo.csv" "--max-predicates=2")
set_tests_properties(fdxtool_dc PROPERTIES  DEPENDS "fdxtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(fdxtool_usage "/root/repo/build/tools/fdxtool")
set_tests_properties(fdxtool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
