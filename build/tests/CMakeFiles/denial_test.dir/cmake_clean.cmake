file(REMOVE_RECURSE
  "CMakeFiles/denial_test.dir/denial_test.cc.o"
  "CMakeFiles/denial_test.dir/denial_test.cc.o.d"
  "denial_test"
  "denial_test.pdb"
  "denial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
