# Empty compiler generated dependencies file for denial_test.
# This may be replaced when dependencies are built.
