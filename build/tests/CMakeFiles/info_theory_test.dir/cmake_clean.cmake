file(REMOVE_RECURSE
  "CMakeFiles/info_theory_test.dir/info_theory_test.cc.o"
  "CMakeFiles/info_theory_test.dir/info_theory_test.cc.o.d"
  "info_theory_test"
  "info_theory_test.pdb"
  "info_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
