# Empty dependencies file for afd_ranking_test.
# This may be replaced when dependencies are built.
