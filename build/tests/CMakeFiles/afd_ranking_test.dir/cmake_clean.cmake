file(REMOVE_RECURSE
  "CMakeFiles/afd_ranking_test.dir/afd_ranking_test.cc.o"
  "CMakeFiles/afd_ranking_test.dir/afd_ranking_test.cc.o.d"
  "afd_ranking_test"
  "afd_ranking_test.pdb"
  "afd_ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afd_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
