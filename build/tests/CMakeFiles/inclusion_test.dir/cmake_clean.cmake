file(REMOVE_RECURSE
  "CMakeFiles/inclusion_test.dir/inclusion_test.cc.o"
  "CMakeFiles/inclusion_test.dir/inclusion_test.cc.o.d"
  "inclusion_test"
  "inclusion_test.pdb"
  "inclusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inclusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
