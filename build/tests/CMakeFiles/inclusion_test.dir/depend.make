# Empty dependencies file for inclusion_test.
# This may be replaced when dependencies are built.
