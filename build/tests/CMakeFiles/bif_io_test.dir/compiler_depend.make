# Empty compiler generated dependencies file for bif_io_test.
# This may be replaced when dependencies are built.
