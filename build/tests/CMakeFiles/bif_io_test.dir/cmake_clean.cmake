file(REMOVE_RECURSE
  "CMakeFiles/bif_io_test.dir/bif_io_test.cc.o"
  "CMakeFiles/bif_io_test.dir/bif_io_test.cc.o.d"
  "bif_io_test"
  "bif_io_test.pdb"
  "bif_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bif_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
