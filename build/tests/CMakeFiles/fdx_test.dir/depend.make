# Empty dependencies file for fdx_test.
# This may be replaced when dependencies are built.
