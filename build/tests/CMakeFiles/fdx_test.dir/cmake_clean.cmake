file(REMOVE_RECURSE
  "CMakeFiles/fdx_test.dir/fdx_test.cc.o"
  "CMakeFiles/fdx_test.dir/fdx_test.cc.o.d"
  "fdx_test"
  "fdx_test.pdb"
  "fdx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
