file(REMOVE_RECURSE
  "CMakeFiles/pyro_test.dir/pyro_test.cc.o"
  "CMakeFiles/pyro_test.dir/pyro_test.cc.o.d"
  "pyro_test"
  "pyro_test.pdb"
  "pyro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
