# Empty dependencies file for pyro_test.
# This may be replaced when dependencies are built.
