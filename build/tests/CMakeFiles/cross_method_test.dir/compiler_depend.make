# Empty compiler generated dependencies file for cross_method_test.
# This may be replaced when dependencies are built.
