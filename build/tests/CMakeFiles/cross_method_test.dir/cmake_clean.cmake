file(REMOVE_RECURSE
  "CMakeFiles/cross_method_test.dir/cross_method_test.cc.o"
  "CMakeFiles/cross_method_test.dir/cross_method_test.cc.o.d"
  "cross_method_test"
  "cross_method_test.pdb"
  "cross_method_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
