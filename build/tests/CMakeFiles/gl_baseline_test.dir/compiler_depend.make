# Empty compiler generated dependencies file for gl_baseline_test.
# This may be replaced when dependencies are built.
