file(REMOVE_RECURSE
  "CMakeFiles/gl_baseline_test.dir/gl_baseline_test.cc.o"
  "CMakeFiles/gl_baseline_test.dir/gl_baseline_test.cc.o.d"
  "gl_baseline_test"
  "gl_baseline_test.pdb"
  "gl_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
