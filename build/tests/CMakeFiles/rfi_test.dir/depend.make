# Empty dependencies file for rfi_test.
# This may be replaced when dependencies are built.
