file(REMOVE_RECURSE
  "CMakeFiles/rfi_test.dir/rfi_test.cc.o"
  "CMakeFiles/rfi_test.dir/rfi_test.cc.o.d"
  "rfi_test"
  "rfi_test.pdb"
  "rfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
