file(REMOVE_RECURSE
  "CMakeFiles/glasso_test.dir/glasso_test.cc.o"
  "CMakeFiles/glasso_test.dir/glasso_test.cc.o.d"
  "glasso_test"
  "glasso_test.pdb"
  "glasso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glasso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
