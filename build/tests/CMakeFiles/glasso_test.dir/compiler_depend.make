# Empty compiler generated dependencies file for glasso_test.
# This may be replaced when dependencies are built.
