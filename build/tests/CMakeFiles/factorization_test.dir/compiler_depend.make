# Empty compiler generated dependencies file for factorization_test.
# This may be replaced when dependencies are built.
