
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/factorization_test.cc" "tests/CMakeFiles/factorization_test.dir/factorization_test.cc.o" "gcc" "tests/CMakeFiles/factorization_test.dir/factorization_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/fdx_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/imputation/CMakeFiles/fdx_imputation.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/fdx_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fdx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fdx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/fdx_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fdx_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/fdx_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fdx_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
