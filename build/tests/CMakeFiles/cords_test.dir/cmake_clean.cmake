file(REMOVE_RECURSE
  "CMakeFiles/cords_test.dir/cords_test.cc.o"
  "CMakeFiles/cords_test.dir/cords_test.cc.o.d"
  "cords_test"
  "cords_test.pdb"
  "cords_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
