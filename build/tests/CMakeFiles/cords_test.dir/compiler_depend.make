# Empty compiler generated dependencies file for cords_test.
# This may be replaced when dependencies are built.
