file(REMOVE_RECURSE
  "libfdx_baselines.a"
)
