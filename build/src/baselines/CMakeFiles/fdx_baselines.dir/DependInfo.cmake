
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cords.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/cords.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/cords.cc.o.d"
  "/root/repo/src/baselines/denial.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/denial.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/denial.cc.o.d"
  "/root/repo/src/baselines/gl_baseline.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/gl_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/gl_baseline.cc.o.d"
  "/root/repo/src/baselines/inclusion.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/inclusion.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/inclusion.cc.o.d"
  "/root/repo/src/baselines/info_theory.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/info_theory.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/info_theory.cc.o.d"
  "/root/repo/src/baselines/pyro.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/pyro.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/pyro.cc.o.d"
  "/root/repo/src/baselines/rfi.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/rfi.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/rfi.cc.o.d"
  "/root/repo/src/baselines/tane.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/tane.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/tane.cc.o.d"
  "/root/repo/src/baselines/ucc.cc" "src/baselines/CMakeFiles/fdx_baselines.dir/ucc.cc.o" "gcc" "src/baselines/CMakeFiles/fdx_baselines.dir/ucc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fd/CMakeFiles/fdx_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fdx_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
