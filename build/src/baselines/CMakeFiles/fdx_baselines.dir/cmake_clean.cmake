file(REMOVE_RECURSE
  "CMakeFiles/fdx_baselines.dir/cords.cc.o"
  "CMakeFiles/fdx_baselines.dir/cords.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/denial.cc.o"
  "CMakeFiles/fdx_baselines.dir/denial.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/gl_baseline.cc.o"
  "CMakeFiles/fdx_baselines.dir/gl_baseline.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/inclusion.cc.o"
  "CMakeFiles/fdx_baselines.dir/inclusion.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/info_theory.cc.o"
  "CMakeFiles/fdx_baselines.dir/info_theory.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/pyro.cc.o"
  "CMakeFiles/fdx_baselines.dir/pyro.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/rfi.cc.o"
  "CMakeFiles/fdx_baselines.dir/rfi.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/tane.cc.o"
  "CMakeFiles/fdx_baselines.dir/tane.cc.o.d"
  "CMakeFiles/fdx_baselines.dir/ucc.cc.o"
  "CMakeFiles/fdx_baselines.dir/ucc.cc.o.d"
  "libfdx_baselines.a"
  "libfdx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
