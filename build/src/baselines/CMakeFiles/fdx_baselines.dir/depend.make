# Empty dependencies file for fdx_baselines.
# This may be replaced when dependencies are built.
