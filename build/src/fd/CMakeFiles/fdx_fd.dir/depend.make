# Empty dependencies file for fdx_fd.
# This may be replaced when dependencies are built.
