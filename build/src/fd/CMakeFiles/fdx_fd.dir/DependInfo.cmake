
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/cfd.cc" "src/fd/CMakeFiles/fdx_fd.dir/cfd.cc.o" "gcc" "src/fd/CMakeFiles/fdx_fd.dir/cfd.cc.o.d"
  "/root/repo/src/fd/fd.cc" "src/fd/CMakeFiles/fdx_fd.dir/fd.cc.o" "gcc" "src/fd/CMakeFiles/fdx_fd.dir/fd.cc.o.d"
  "/root/repo/src/fd/normalization.cc" "src/fd/CMakeFiles/fdx_fd.dir/normalization.cc.o" "gcc" "src/fd/CMakeFiles/fdx_fd.dir/normalization.cc.o.d"
  "/root/repo/src/fd/partition.cc" "src/fd/CMakeFiles/fdx_fd.dir/partition.cc.o" "gcc" "src/fd/CMakeFiles/fdx_fd.dir/partition.cc.o.d"
  "/root/repo/src/fd/validation.cc" "src/fd/CMakeFiles/fdx_fd.dir/validation.cc.o" "gcc" "src/fd/CMakeFiles/fdx_fd.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
