file(REMOVE_RECURSE
  "libfdx_fd.a"
)
