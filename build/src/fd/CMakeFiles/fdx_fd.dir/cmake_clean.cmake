file(REMOVE_RECURSE
  "CMakeFiles/fdx_fd.dir/cfd.cc.o"
  "CMakeFiles/fdx_fd.dir/cfd.cc.o.d"
  "CMakeFiles/fdx_fd.dir/fd.cc.o"
  "CMakeFiles/fdx_fd.dir/fd.cc.o.d"
  "CMakeFiles/fdx_fd.dir/normalization.cc.o"
  "CMakeFiles/fdx_fd.dir/normalization.cc.o.d"
  "CMakeFiles/fdx_fd.dir/partition.cc.o"
  "CMakeFiles/fdx_fd.dir/partition.cc.o.d"
  "CMakeFiles/fdx_fd.dir/validation.cc.o"
  "CMakeFiles/fdx_fd.dir/validation.cc.o.d"
  "libfdx_fd.a"
  "libfdx_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
