# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("data")
subdirs("fd")
subdirs("bn")
subdirs("synth")
subdirs("datasets")
subdirs("core")
subdirs("baselines")
subdirs("imputation")
subdirs("eval")
