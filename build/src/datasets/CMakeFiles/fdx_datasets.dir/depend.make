# Empty dependencies file for fdx_datasets.
# This may be replaced when dependencies are built.
