file(REMOVE_RECURSE
  "CMakeFiles/fdx_datasets.dir/real_world.cc.o"
  "CMakeFiles/fdx_datasets.dir/real_world.cc.o.d"
  "libfdx_datasets.a"
  "libfdx_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
