file(REMOVE_RECURSE
  "libfdx_datasets.a"
)
