
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bayes_net.cc" "src/bn/CMakeFiles/fdx_bn.dir/bayes_net.cc.o" "gcc" "src/bn/CMakeFiles/fdx_bn.dir/bayes_net.cc.o.d"
  "/root/repo/src/bn/bif_io.cc" "src/bn/CMakeFiles/fdx_bn.dir/bif_io.cc.o" "gcc" "src/bn/CMakeFiles/fdx_bn.dir/bif_io.cc.o.d"
  "/root/repo/src/bn/networks.cc" "src/bn/CMakeFiles/fdx_bn.dir/networks.cc.o" "gcc" "src/bn/CMakeFiles/fdx_bn.dir/networks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/fdx_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
