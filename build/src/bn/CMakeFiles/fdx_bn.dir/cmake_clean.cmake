file(REMOVE_RECURSE
  "CMakeFiles/fdx_bn.dir/bayes_net.cc.o"
  "CMakeFiles/fdx_bn.dir/bayes_net.cc.o.d"
  "CMakeFiles/fdx_bn.dir/bif_io.cc.o"
  "CMakeFiles/fdx_bn.dir/bif_io.cc.o.d"
  "CMakeFiles/fdx_bn.dir/networks.cc.o"
  "CMakeFiles/fdx_bn.dir/networks.cc.o.d"
  "libfdx_bn.a"
  "libfdx_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
