file(REMOVE_RECURSE
  "libfdx_bn.a"
)
