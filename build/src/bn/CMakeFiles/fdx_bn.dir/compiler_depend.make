# Empty compiler generated dependencies file for fdx_bn.
# This may be replaced when dependencies are built.
