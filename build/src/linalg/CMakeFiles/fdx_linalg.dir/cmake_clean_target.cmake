file(REMOVE_RECURSE
  "libfdx_linalg.a"
)
