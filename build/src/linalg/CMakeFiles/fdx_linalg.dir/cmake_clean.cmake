file(REMOVE_RECURSE
  "CMakeFiles/fdx_linalg.dir/factorization.cc.o"
  "CMakeFiles/fdx_linalg.dir/factorization.cc.o.d"
  "CMakeFiles/fdx_linalg.dir/glasso.cc.o"
  "CMakeFiles/fdx_linalg.dir/glasso.cc.o.d"
  "CMakeFiles/fdx_linalg.dir/lasso.cc.o"
  "CMakeFiles/fdx_linalg.dir/lasso.cc.o.d"
  "CMakeFiles/fdx_linalg.dir/matrix.cc.o"
  "CMakeFiles/fdx_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/fdx_linalg.dir/stats.cc.o"
  "CMakeFiles/fdx_linalg.dir/stats.cc.o.d"
  "libfdx_linalg.a"
  "libfdx_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
