# Empty compiler generated dependencies file for fdx_linalg.
# This may be replaced when dependencies are built.
