file(REMOVE_RECURSE
  "libfdx_util.a"
)
