# Empty dependencies file for fdx_util.
# This may be replaced when dependencies are built.
