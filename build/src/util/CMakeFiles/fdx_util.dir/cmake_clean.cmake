file(REMOVE_RECURSE
  "CMakeFiles/fdx_util.dir/json_writer.cc.o"
  "CMakeFiles/fdx_util.dir/json_writer.cc.o.d"
  "CMakeFiles/fdx_util.dir/rng.cc.o"
  "CMakeFiles/fdx_util.dir/rng.cc.o.d"
  "CMakeFiles/fdx_util.dir/status.cc.o"
  "CMakeFiles/fdx_util.dir/status.cc.o.d"
  "CMakeFiles/fdx_util.dir/string_util.cc.o"
  "CMakeFiles/fdx_util.dir/string_util.cc.o.d"
  "libfdx_util.a"
  "libfdx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
