file(REMOVE_RECURSE
  "CMakeFiles/fdx_data.dir/csv.cc.o"
  "CMakeFiles/fdx_data.dir/csv.cc.o.d"
  "CMakeFiles/fdx_data.dir/discretize.cc.o"
  "CMakeFiles/fdx_data.dir/discretize.cc.o.d"
  "CMakeFiles/fdx_data.dir/table.cc.o"
  "CMakeFiles/fdx_data.dir/table.cc.o.d"
  "CMakeFiles/fdx_data.dir/value.cc.o"
  "CMakeFiles/fdx_data.dir/value.cc.o.d"
  "libfdx_data.a"
  "libfdx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
