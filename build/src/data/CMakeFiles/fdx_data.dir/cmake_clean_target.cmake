file(REMOVE_RECURSE
  "libfdx_data.a"
)
