# Empty dependencies file for fdx_data.
# This may be replaced when dependencies are built.
