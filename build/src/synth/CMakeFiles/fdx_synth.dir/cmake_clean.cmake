file(REMOVE_RECURSE
  "CMakeFiles/fdx_synth.dir/generator.cc.o"
  "CMakeFiles/fdx_synth.dir/generator.cc.o.d"
  "libfdx_synth.a"
  "libfdx_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
