file(REMOVE_RECURSE
  "libfdx_synth.a"
)
