# Empty dependencies file for fdx_synth.
# This may be replaced when dependencies are built.
