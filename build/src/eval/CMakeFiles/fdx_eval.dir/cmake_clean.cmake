file(REMOVE_RECURSE
  "CMakeFiles/fdx_eval.dir/afd_ranking.cc.o"
  "CMakeFiles/fdx_eval.dir/afd_ranking.cc.o.d"
  "CMakeFiles/fdx_eval.dir/profiler.cc.o"
  "CMakeFiles/fdx_eval.dir/profiler.cc.o.d"
  "CMakeFiles/fdx_eval.dir/report.cc.o"
  "CMakeFiles/fdx_eval.dir/report.cc.o.d"
  "CMakeFiles/fdx_eval.dir/runner.cc.o"
  "CMakeFiles/fdx_eval.dir/runner.cc.o.d"
  "libfdx_eval.a"
  "libfdx_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
