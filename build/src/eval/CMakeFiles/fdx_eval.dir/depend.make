# Empty dependencies file for fdx_eval.
# This may be replaced when dependencies are built.
