
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/afd_ranking.cc" "src/eval/CMakeFiles/fdx_eval.dir/afd_ranking.cc.o" "gcc" "src/eval/CMakeFiles/fdx_eval.dir/afd_ranking.cc.o.d"
  "/root/repo/src/eval/profiler.cc" "src/eval/CMakeFiles/fdx_eval.dir/profiler.cc.o" "gcc" "src/eval/CMakeFiles/fdx_eval.dir/profiler.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/fdx_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/fdx_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/eval/CMakeFiles/fdx_eval.dir/runner.cc.o" "gcc" "src/eval/CMakeFiles/fdx_eval.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fdx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fdx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/fdx_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fdx_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
