file(REMOVE_RECURSE
  "libfdx_eval.a"
)
