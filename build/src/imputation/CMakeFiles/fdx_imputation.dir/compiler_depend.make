# Empty compiler generated dependencies file for fdx_imputation.
# This may be replaced when dependencies are built.
