
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imputation/classifier.cc" "src/imputation/CMakeFiles/fdx_imputation.dir/classifier.cc.o" "gcc" "src/imputation/CMakeFiles/fdx_imputation.dir/classifier.cc.o.d"
  "/root/repo/src/imputation/decision_tree.cc" "src/imputation/CMakeFiles/fdx_imputation.dir/decision_tree.cc.o" "gcc" "src/imputation/CMakeFiles/fdx_imputation.dir/decision_tree.cc.o.d"
  "/root/repo/src/imputation/harness.cc" "src/imputation/CMakeFiles/fdx_imputation.dir/harness.cc.o" "gcc" "src/imputation/CMakeFiles/fdx_imputation.dir/harness.cc.o.d"
  "/root/repo/src/imputation/logistic.cc" "src/imputation/CMakeFiles/fdx_imputation.dir/logistic.cc.o" "gcc" "src/imputation/CMakeFiles/fdx_imputation.dir/logistic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fdx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
