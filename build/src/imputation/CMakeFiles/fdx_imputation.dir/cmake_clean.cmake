file(REMOVE_RECURSE
  "CMakeFiles/fdx_imputation.dir/classifier.cc.o"
  "CMakeFiles/fdx_imputation.dir/classifier.cc.o.d"
  "CMakeFiles/fdx_imputation.dir/decision_tree.cc.o"
  "CMakeFiles/fdx_imputation.dir/decision_tree.cc.o.d"
  "CMakeFiles/fdx_imputation.dir/harness.cc.o"
  "CMakeFiles/fdx_imputation.dir/harness.cc.o.d"
  "CMakeFiles/fdx_imputation.dir/logistic.cc.o"
  "CMakeFiles/fdx_imputation.dir/logistic.cc.o.d"
  "libfdx_imputation.a"
  "libfdx_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
