file(REMOVE_RECURSE
  "libfdx_imputation.a"
)
