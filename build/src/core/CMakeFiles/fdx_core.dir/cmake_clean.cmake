file(REMOVE_RECURSE
  "CMakeFiles/fdx_core.dir/fdx.cc.o"
  "CMakeFiles/fdx_core.dir/fdx.cc.o.d"
  "CMakeFiles/fdx_core.dir/incremental.cc.o"
  "CMakeFiles/fdx_core.dir/incremental.cc.o.d"
  "CMakeFiles/fdx_core.dir/ordering.cc.o"
  "CMakeFiles/fdx_core.dir/ordering.cc.o.d"
  "CMakeFiles/fdx_core.dir/transform.cc.o"
  "CMakeFiles/fdx_core.dir/transform.cc.o.d"
  "libfdx_core.a"
  "libfdx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
