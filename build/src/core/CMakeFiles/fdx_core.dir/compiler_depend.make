# Empty compiler generated dependencies file for fdx_core.
# This may be replaced when dependencies are built.
