file(REMOVE_RECURSE
  "libfdx_core.a"
)
