# Empty dependencies file for bench_table6_realworld.
# This may be replaced when dependencies are built.
