# Empty dependencies file for bench_fig3_hospital.
# This may be replaced when dependencies are built.
