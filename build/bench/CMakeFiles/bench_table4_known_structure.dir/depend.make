# Empty dependencies file for bench_table4_known_structure.
# This may be replaced when dependencies are built.
