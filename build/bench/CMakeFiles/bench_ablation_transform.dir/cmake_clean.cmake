file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transform.dir/bench_ablation_transform.cc.o"
  "CMakeFiles/bench_ablation_transform.dir/bench_ablation_transform.cc.o.d"
  "bench_ablation_transform"
  "bench_ablation_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
