file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_imputation.dir/bench_table7_imputation.cc.o"
  "CMakeFiles/bench_table7_imputation.dir/bench_table7_imputation.cc.o.d"
  "bench_table7_imputation"
  "bench_table7_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
