# Empty dependencies file for bench_table7_imputation.
# This may be replaced when dependencies are built.
