# Empty dependencies file for bench_fig4_rfi_hospital.
# This may be replaced when dependencies are built.
