file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rfi_hospital.dir/bench_fig4_rfi_hospital.cc.o"
  "CMakeFiles/bench_fig4_rfi_hospital.dir/bench_fig4_rfi_hospital.cc.o.d"
  "bench_fig4_rfi_hospital"
  "bench_fig4_rfi_hospital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rfi_hospital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
